// lifecycle_mlp: the continuous train-while-serve lifecycle end to end
// (DESIGN.md §14). Trains a small MLP, serves it through the registry-backed
// InferenceService with the request log attached, then shifts the input
// distribution under live traffic (a constant calibration offset on every
// feature). The background
// FineTuneLoop must notice the drift from the logged rows, fine-tune on the
// delayed-labeled shifted traffic, promote the adapted model through the
// sentinel/canary gates, and watch the post-promotion SLO window. This is
// the binary behind the CI lifecycle-smoke job (scripts/check_lifecycle.py
// asserts on its JSON).
//
//   ./lifecycle_mlp                          # drift -> promote -> clean window
//   ./lifecycle_mlp --faults=grad-nan@0      # fine-tune diverges, 0 promotions
//   ./lifecycle_mlp --slo-regress=1          # promote, then scripted p99
//                                            # blowup -> auto-rollback
//
// Exit code 0 unless setup fails; lifecycle outcomes (divergence, canary
// rejections, rollbacks) are data, not errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/lifecycle/fine_tune_loop.h"
#include "src/obs/statusz.h"
#include "src/registry/model_registry.h"
#include "src/resilience/fault_injector.h"
#include "src/serve/inference_service.h"
#include "src/util/flags.h"

using namespace sampnn;

namespace {

// Brief training loop (the lifecycle demo needs a plausible model, not a
// converged one).
void TrainBriefly(Trainer* trainer, const Dataset& train, size_t epochs,
                  size_t batch_size) {
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Matrix x;
  std::vector<int32_t> y;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin + batch_size <= train.size();
         begin += batch_size) {
      const std::span<const size_t> indices(order.data() + begin, batch_size);
      train.FillBatch(indices, &x, &y);
      std::move(trainer->Step(x, y)).ValueOrDie("train step");
    }
  }
}

// The drift scenario: a constant calibration offset on every feature
// (sensor gain drift). The synthetic features center near 0.5, so a
// symmetric transform like pixel inversion would barely move the means;
// a +kShift offset moves every per-feature mean by many reference sigmas
// while leaving the class geometry intact — the detector trips hard and a
// fine-tune round can fully adapt (the first layer's biases absorb it).
constexpr float kShift = 2.0f;

std::vector<float> ShiftRow(std::span<const float> row) {
  std::vector<float> shifted(row.begin(), row.end());
  for (float& v : shifted) v += kShift;
  return shifted;
}

// Accuracy of the CURRENT live backend on a shifted slice of the test set —
// measured before the shift phase (the old model should be bad at it) and
// after the lifecycle acts (a promoted model should have recovered).
double ShiftedAccuracy(ModelRegistry* registry, const Dataset& test,
                       size_t rows) {
  rows = std::min(rows, test.size());
  if (rows == 0) return 0.0;
  Matrix inputs(rows, test.dim());
  for (size_t r = 0; r < rows; ++r) {
    const std::span<const float> row = test.Example(r);
    for (size_t c = 0; c < test.dim(); ++c) inputs(r, c) = row[c] + kShift;
  }
  const auto entry = registry->Current();
  Matrix logits;
  const Status status = entry->backend->Forward(inputs, CancelContext{},
                                                ServeQuality::kFull, &logits);
  if (!status.ok()) return 0.0;
  size_t correct = 0;
  for (size_t r = 0; r < rows; ++r) {
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c) {
      if (logits(r, c) > logits(r, best)) best = c;
    }
    if (static_cast<int32_t>(best) == test.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

std::string SummaryJson(const ServeStats& s, const RegistryStats& r,
                        uint64_t live_version, const LifecycleStats& l,
                        const RequestLogStats& q, uint64_t client_ok,
                        uint64_t labels_sent, double acc_before,
                        double acc_after) {
  std::ostringstream out;
  out << "{\"serve\":{\"submitted\":" << s.submitted
      << ",\"admitted\":" << s.admitted << ",\"shed\":" << s.shed
      << ",\"completed\":" << s.completed
      << ",\"completed_degraded\":" << s.completed_degraded
      << ",\"deadline_exceeded\":" << s.deadline_exceeded
      << ",\"cancelled\":" << s.cancelled
      << ",\"client_ok\":" << client_ok
      << ",\"labels_sent\":" << labels_sent << "}";
  out << ",\"registry\":{\"live_version\":" << live_version
      << ",\"promote_attempted\":" << r.promotions_attempted
      << ",\"promoted\":" << r.promoted
      << ",\"rejected_corrupt\":" << r.rejected_corrupt
      << ",\"rejected_regressed\":" << r.rejected_regressed
      << ",\"rejected_incompatible\":" << r.rejected_incompatible
      << ",\"rejected_raced\":" << r.rejected_raced
      << ",\"rollbacks\":" << r.rollbacks << "}";
  out << ",\"lifecycle\":{\"state\":\"" << LifecycleStateToString(l.state)
      << "\",\"ticks\":" << l.ticks << ",\"rounds\":" << l.rounds
      << ",\"batches\":" << l.batches << ",\"diverged\":" << l.diverged
      << ",\"promotions\":" << l.promotions
      << ",\"rejected_canary\":" << l.rejected_canary
      << ",\"rejected_registry\":" << l.rejected_registry
      << ",\"rollbacks\":" << l.rollbacks
      << ",\"windows_clean\":" << l.windows_clean
      << ",\"pool_size\":" << l.pool_size << "}";
  out << ",\"drift\":{\"score\":" << l.drift_score
      << ",\"trips\":" << l.drift_trips << ",\"observed\":" << l.drift_observed
      << ",\"refreezes\":" << l.drift_refreezes << "}";
  out << ",\"request_log\":{\"offered\":" << q.offered
      << ",\"sampled\":" << q.sampled << ",\"dropped\":" << q.dropped
      << ",\"labeled\":" << q.labeled << ",\"drained\":" << q.drained
      << ",\"stalls\":" << q.stalls << ",\"buffered\":" << q.buffered << "}";
  out << ",\"accuracy\":{\"shifted_before\":" << acc_before
      << ",\"shifted_after\":" << acc_after << "}";
  out << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("lifecycle_mlp");
  flags.AddInt("epochs", 1, "brief training epochs before serving");
  flags.AddInt("scale", 50, "dataset downscale factor");
  flags.AddInt("hidden", 32, "hidden units per layer");
  flags.AddInt("baseline-requests", 200, "unshifted requests (phase 1)");
  flags.AddInt("shifted-requests", 800, "offset-shifted requests (phase 2)");
  flags.AddInt("client-threads", 2, "concurrent submitting threads");
  flags.AddInt("inflight-per-client", 8, "outstanding requests per client");
  flags.AddInt("workers", 2, "inference worker threads");
  flags.AddInt("deadline-ms", 2000, "per-request deadline");
  flags.AddInt("window-ms", 1500, "post-promotion demotion window");
  flags.AddInt("wait-ms", 20000,
               "max wait for the lifecycle outcome after the shift phase "
               "(a shifted-label trickle keeps flowing while waiting, so "
               "canary-rejected rounds can refill their pool and retry)");
  flags.AddString("faults", "",
                  "fault spec (grad-nan@N,drift-spike@N,stream-stall@N,"
                  "canary-regress@N); overrides SAMPNN_FAULTS");
  flags.AddInt("slo-regress", 0,
               "1 = feed the demotion watch a scripted SLO source whose p99 "
               "blows up right after the promotion, forcing an auto-rollback");
  flags.AddString("checkpoint-dir", "",
                  "shared fine-tune checkpoint dir (default: under /tmp)");
  flags.AddString("json-out", "", "also write the JSON summary to this file");
  flags.AddInt("statusz-port", -1,
               "loopback introspection port (-1 = off, 0 = ephemeral); the "
               "bound port is announced on stderr as 'statusz: ...'");
  flags.AddInt("hold-ms", 0,
               "keep the service and loop up this long after the outcome, "
               "so external scrapers can read the post-traffic state");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;  // --help
  st.Abort("flags");

  // 1. Data + a briefly trained standard model. The trainer itself is
  // handed to the FineTuneLoop afterwards: fine-tuning continues from the
  // exact weights the registry starts out serving.
  DatasetSplits data =
      std::move(GenerateBenchmark("mnist", /*seed=*/7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("generate data");
  const MlpConfig net_config = PaperMlpConfig(
      data.train, /*depth=*/2, static_cast<size_t>(flags.GetInt("hidden")),
      /*seed=*/42);
  TrainerOptions trainer_options =
      PaperTrainerOptions(TrainerKind::kStandard, /*batch_size=*/20,
                          /*seed=*/42);
  std::unique_ptr<Trainer> trainer =
      std::move(MakeTrainer(net_config, trainer_options)).ValueOrDie("trainer");
  TrainBriefly(trainer.get(), data.train,
               static_cast<size_t>(flags.GetInt("epochs")), 20);

  // 2. Registry serving the trained weights. The obs gate mirrors the
  // service's: a /metricsz scrape must see registry.* series even when
  // SAMPNN_TELEMETRY is unset.
  const bool statusz_on = flags.GetInt("statusz-port") >= 0;
  RegistryOptions registry_options = RegistryOptions::FromEnv();
  registry_options.obs_enabled = [statusz_on] {
    return statusz_on || TelemetryEnabled();
  };
  std::shared_ptr<ModelRegistry> registry =
      std::move(ModelRegistry::Create(
                    std::shared_ptr<ModelBackend>(
                        MakeDenseBackend(trainer->net())),
                    [](Mlp model) -> StatusOr<std::shared_ptr<ModelBackend>> {
                      return std::shared_ptr<ModelBackend>(
                          MakeDenseBackend(std::move(model)));
                    },
                    registry_options))
          .ValueOrDie("registry");

  // 3. The request log + the service wired to populate it.
  RequestLogOptions log_options = RequestLogOptions::FromEnv();
  log_options.obs_enabled = registry_options.obs_enabled;
  std::shared_ptr<RequestLog> log = RequestLog::Create(log_options);

  ServeOptions serve_options = ServeOptions::FromEnv();
  serve_options.workers = static_cast<size_t>(flags.GetInt("workers"));
  serve_options.default_deadline_ms = flags.GetInt("deadline-ms");
  if (statusz_on) serve_options.statusz_port = flags.GetInt("statusz-port");
  serve_options.request_log = log;
  std::unique_ptr<InferenceService> service =
      std::move(InferenceService::Create(registry, serve_options))
          .ValueOrDie("service");
  if (service->statusz_port() >= 0) {
    // Parseable announcement for scrapers (scripts/lifecycle_smoke.sh).
    std::fprintf(stderr, "statusz: listening on 127.0.0.1:%d\n",
                 service->statusz_port());
  }

  // 4. Faults (--faults wins over SAMPNN_FAULTS), installed after training
  // so the fine-tune rounds see step counters starting at zero.
  if (!flags.GetString("faults").empty()) {
    FaultInjector::InstallGlobal(
        std::move(FaultInjector::Parse(flags.GetString("faults")))
            .ValueOrDie("faults"));
  } else {
    FaultInjector::InstallGlobalFromEnv().Abort("SAMPNN_FAULTS");
  }

  // 5. The lifecycle loop. The drift reference freezes on a sample of the
  // unshifted training inputs; the demotion watch reads either the real
  // serve-side SLO tracker or (--slo-regress) a scripted source the main
  // thread inflates once the promotion lands.
  std::string checkpoint_dir = flags.GetString("checkpoint-dir");
  if (checkpoint_dir.empty()) {
    checkpoint_dir = (std::filesystem::temp_directory_path() /
                      ("sampnn_lifecycle_" + std::to_string(::getpid())))
                         .string();
  }
  std::atomic<int> scripted_p99_ms{5};
  FineTuneLoopOptions loop_options = FineTuneLoopOptions::FromEnv();
  loop_options.checkpoint_dir = checkpoint_dir;
  loop_options.poll_ms = 20;
  loop_options.demotion_window_ms = flags.GetInt("window-ms");
  loop_options.fine_tune_batches = 240;
  loop_options.batch_size = 32;
  loop_options.checkpoint_every = 40;
  // High enough that a round fires only once the pool is dominated by
  // shifted rows (the ~200 baseline labels alone can never start one) —
  // otherwise a fast trip fine-tunes on mostly pre-shift data and the
  // promoted model barely adapts.
  loop_options.min_labeled = 512;
  loop_options.canary_rows = 32;
  loop_options.obs_enabled = registry_options.obs_enabled;
  const bool slo_regress = flags.GetInt("slo-regress") != 0;
  if (slo_regress) {
    loop_options.slo_source = [&scripted_p99_ms] {
      SloSnapshot snapshot;
      snapshot.p99_ms =
          static_cast<double>(scripted_p99_ms.load(std::memory_order_relaxed));
      snapshot.window_count = 200;
      return snapshot;
    };
  } else if (service->slo_tracker() != nullptr) {
    SloTracker* tracker = service->slo_tracker();
    loop_options.slo_source = [tracker] { return tracker->Snapshot(); };
  }

  Matrix drift_reference;
  {
    std::vector<size_t> indices(std::min<size_t>(256, data.train.size()));
    std::iota(indices.begin(), indices.end(), size_t{0});
    std::vector<int32_t> unused;
    data.train.FillBatch(indices, &drift_reference, &unused);
  }
  std::unique_ptr<FineTuneLoop> loop =
      std::move(FineTuneLoop::Create(std::move(trainer), log, registry,
                                     drift_reference, loop_options))
          .ValueOrDie("lifecycle loop");
  if (service->statusz_server() != nullptr) {
    FineTuneLoop* loop_ptr = loop.get();
    service->statusz_server()->AddSection(
        "lifecycle", [loop_ptr] { return loop_ptr->RenderStatuszSection(); });
  }

  const double acc_before =
      ShiftedAccuracy(registry.get(), data.test, /*rows=*/256);
  loop->Start().Abort("lifecycle start");

  // 6. Client load: phase 1 unshifted, phase 2 pixel-inverted. Every
  // settled OK result joins its delayed ground-truth label back onto the
  // request log — that labeled pool is what the fine-tune round trains on.
  std::atomic<uint64_t> client_ok{0}, labels_sent{0};
  const auto run_phase = [&](size_t requests, bool shifted) {
    const size_t client_threads = std::max<size_t>(
        1, static_cast<size_t>(flags.GetInt("client-threads")));
    std::vector<std::thread> clients;
    clients.reserve(client_threads);
    for (size_t c = 0; c < client_threads; ++c) {
      clients.emplace_back([&, c] {
        const size_t window = std::max<size_t>(
            1, static_cast<size_t>(flags.GetInt("inflight-per-client")));
        std::deque<std::pair<std::future<InferenceResult>, int32_t>> inflight;
        const auto settle = [&](std::pair<std::future<InferenceResult>,
                                          int32_t> entry) {
          const InferenceResult result = entry.first.get();
          if (!result.status.ok()) return;
          client_ok.fetch_add(1, std::memory_order_relaxed);
          if (result.log_seq != 0) {
            // status-ignored: best-effort; row may be drained or evicted
            (void)log->Label(result.log_seq, entry.second);
            labels_sent.fetch_add(1, std::memory_order_relaxed);
          }
        };
        for (size_t i = c; i < requests; i += client_threads) {
          const size_t example = i % data.test.size();
          const std::span<const float> row = data.test.Example(example);
          std::vector<float> features =
              shifted ? ShiftRow(row)
                      : std::vector<float>(row.begin(), row.end());
          inflight.emplace_back(
              service->Submit(std::string(kDefaultTenant),
                              std::move(features)),
              data.test.Label(example));
          if (inflight.size() >= window) {
            settle(std::move(inflight.front()));
            inflight.pop_front();
          }
        }
        while (!inflight.empty()) {
          settle(std::move(inflight.front()));
          inflight.pop_front();
        }
      });
    }
    for (std::thread& t : clients) t.join();
  };

  run_phase(static_cast<size_t>(flags.GetInt("baseline-requests")),
            /*shifted=*/false);
  run_phase(static_cast<size_t>(flags.GetInt("shifted-requests")),
            /*shifted=*/true);

  // 7. Wait for the lifecycle outcome, keeping a shifted-label trickle
  // flowing so a canary-rejected round can refill its pool and retry.
  // Terminal outcomes: a promotion whose demotion window resolved (clean or
  // rolled back), or a diverged round (episode abandoned, unpromotable).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(flags.GetInt("wait-ms"));
  bool regression_injected = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const LifecycleStats now = loop->stats();
    if (slo_regress && now.promotions > 0 && !regression_injected) {
      scripted_p99_ms.store(500, std::memory_order_relaxed);
      regression_injected = true;
      std::fprintf(stderr, "slo-regress: scripted p99 inflated to 500ms\n");
    }
    const bool window_resolved =
        now.promotions > 0 && (now.windows_clean + now.rollbacks) > 0;
    if (window_resolved || now.diverged > 0) break;
    run_phase(/*requests=*/32, /*shifted=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  const double acc_after =
      ShiftedAccuracy(registry.get(), data.test, /*rows=*/256);
  if (flags.GetInt("hold-ms") > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.GetInt("hold-ms")));
  }
  // The loop references the service-owned SLO tracker; stop it first.
  loop->Stop();
  service->Stop(InferenceService::StopMode::kDrain);

  // 8. Report.
  const std::string json = SummaryJson(
      service->Stats(), registry->stats(), registry->live_version(),
      loop->stats(), log->stats(), client_ok.load(), labels_sent.load(),
      acc_before, acc_after);
  std::printf("%s\n", json.c_str());
  const std::string json_out = flags.GetString("json-out");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
  }
  FaultInjector::ClearGlobal();
  std::filesystem::remove_all(checkpoint_dir);
  return 0;
}
