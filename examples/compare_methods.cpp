// Side-by-side comparison of all five training approaches (paper §8.3) on
// one synthetic benchmark: accuracy, wall-clock time, and the
// feedforward/backprop split, in both the mini-batch and stochastic
// settings.
//
//   ./compare_methods [--dataset=mnist] [--epochs=N] [--scale=S] [--batch=B]

#include <cstdio>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/metrics/reporter.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("compare_methods");
  flags.AddString("dataset", "mnist", "mnist|kmnist|fashion|emnist|norb|cifar10");
  flags.AddInt("epochs", 4, "training epochs");
  flags.AddInt("scale", 50, "dataset downscale factor");
  flags.AddInt("batch", 20, "minibatch size (1 = stochastic)");
  flags.AddInt("hidden", 128, "hidden units per layer");
  flags.AddInt("depth", 3, "hidden layers");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;
  st.Abort("flags");

  const size_t batch = static_cast<size_t>(flags.GetInt("batch"));
  DatasetSplits data =
      std::move(GenerateBenchmark(flags.GetString("dataset"), 7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("generate data");
  const MlpConfig net =
      PaperMlpConfig(data.train, static_cast<size_t>(flags.GetInt("depth")),
                     static_cast<size_t>(flags.GetInt("hidden")), 42);

  const TrainerKind kinds[] = {TrainerKind::kStandard, TrainerKind::kDropout,
                               TrainerKind::kAdaptiveDropout,
                               TrainerKind::kAlsh, TrainerKind::kMc};
  TableReporter table(
      "Method comparison on " + flags.GetString("dataset") +
          " (batch=" + std::to_string(batch) + ")",
      {"method", "test acc %", "train s", "forward s", "backward s"});
  for (TrainerKind kind : kinds) {
    ExperimentConfig config;
    config.trainer = PaperTrainerOptions(kind, batch, 42);
    config.batch_size = batch;
    config.epochs = static_cast<size_t>(flags.GetInt("epochs"));
    config.verbose = true;
    std::fprintf(stderr, "-- training %s\n", TrainerKindToString(kind));
    ExperimentResult result =
        std::move(RunExperiment(net, config, data)).ValueOrDie("experiment");
    table.AddRow({result.method,
                  TableReporter::Cell(100.0 * result.final_test_accuracy),
                  TableReporter::Cell(result.train_seconds),
                  TableReporter::Cell(result.forward_seconds),
                  TableReporter::Cell(result.backward_seconds)});
  }
  table.Print();
  return 0;
}
