// The paper's §2 motivation, end to end: personalized AI on a CPU-only
// device. A "global" model is pretrained on the common distribution, then a
// simulated user device fine-tunes it locally on its own (shifted) data —
// without any backend — using the method the §10.4 decision tree picks for
// the device's regime (mini-batch on CPU → MC-approx).
//
//   ./device_personalization [--scale=S]

#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/method_selector.h"
#include "src/data/batcher.h"
#include "src/data/synthetic.h"
#include "src/metrics/accuracy.h"
#include "src/nn/serialize.h"
#include "src/util/flags.h"

namespace {

// A user whose data distribution is a noisier, shifted version of the global
// one: same prototypes (same seed), different corruption profile.
sampnn::Dataset MakeUserData(size_t scale, uint64_t seed) {
  using namespace sampnn;
  SyntheticSpec spec =
      std::move(GetBenchmarkSpec("mnist")).ValueOrDie("spec").synthetic;
  spec.num_examples = 12000 / scale + 200;
  spec.noise_stddev = 0.16f;  // the device's sensor is worse
  spec.max_shift = 3;         // and its inputs are poorly centered
  return GenerateSynthetic(spec, seed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("device_personalization");
  flags.AddInt("scale", 25, "dataset downscale factor");
  flags.AddInt("pretrain-epochs", 3, "global pretraining epochs");
  flags.AddInt("finetune-epochs", 12, "on-device fine-tuning epochs");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;
  st.Abort("flags");
  const size_t scale = static_cast<size_t>(flags.GetInt("scale"));

  // --- Phase 1: global pretraining (shared prototypes, clean data). ---
  DatasetSplits global =
      std::move(GenerateBenchmark("mnist", 7, scale)).ValueOrDie("global data");
  const MlpConfig net_config = PaperMlpConfig(global.train, 3, 128, 42);

  TrainingScenario scenario;
  scenario.batch_size = 20;
  scenario.hidden_layers = 3;
  const MethodRecommendation rec = RecommendMethod(scenario);
  std::printf("decision tree picks: %s\n  %s\n\n",
              TrainerKindToString(rec.method), rec.rationale.c_str());

  ExperimentConfig pretrain;
  pretrain.trainer = PaperTrainerOptions(rec.method, 20, 42);
  pretrain.batch_size = 20;
  pretrain.epochs = static_cast<size_t>(flags.GetInt("pretrain-epochs"));
  pretrain.verbose = true;

  // Train the global model via the normal driver, then keep its weights by
  // re-running the fine-tune phase on a trainer that starts from them.
  SAMPNN_CHECK(pretrain.epochs > 0);
  std::unique_ptr<Trainer> trainer =
      std::move(MakeTrainer(net_config, pretrain.trainer)).ValueOrDie("trainer");
  {
    Batcher batcher(global.train, pretrain.batch_size, 7);
    Matrix x;
    std::vector<int32_t> y;
    for (size_t epoch = 1; epoch <= pretrain.epochs; ++epoch) {
      while (batcher.Next(&x, &y)) {
        std::move(trainer->Step(x, y)).ValueOrDie("pretrain step");
      }
      std::fprintf(stderr, "  pretrain epoch %zu: global test acc %.2f%%\n",
                   epoch,
                   100.0 * EvaluateAccuracy(trainer->net(), global.test));
    }
  }

  // Ship the pretrained model to the "device" (round-trip through the
  // binary model format — what an actual deployment would persist).
  const std::string model_path = "/tmp/sampnn_global_model.bin";
  SaveMlp(trainer->net(), model_path).Abort("save model");
  Mlp shipped = std::move(LoadMlp(model_path)).ValueOrDie("load model");
  std::printf("\nshipped model %s (%zu params) via %s\n",
              shipped.ArchitectureString().c_str(), shipped.num_params(),
              model_path.c_str());

  // --- Phase 2: on-device fine-tuning on the user's shifted data. ---
  Dataset user_all = MakeUserData(scale, /*seed=*/7);  // same prototype seed
  Rng split_rng(99);
  const size_t user_test = user_all.size() / 3;
  DatasetSplits user =
      std::move(SplitDataset(user_all, user_all.size() - user_test, user_test,
                             0, split_rng))
          .ValueOrDie("user split");

  const double before = EvaluateAccuracy(trainer->net(), user.test);
  std::printf("\nuser-device accuracy before fine-tuning: %.2f%%\n",
              100.0 * before);

  Stopwatch watch;
  {
    Batcher batcher(user.train, 20, 13);
    Matrix x;
    std::vector<int32_t> y;
    const auto epochs = static_cast<size_t>(flags.GetInt("finetune-epochs"));
    for (size_t epoch = 1; epoch <= epochs; ++epoch) {
      double loss_sum = 0.0;
      size_t batches = 0;
      while (batcher.Next(&x, &y)) {
        loss_sum += std::move(trainer->Step(x, y)).ValueOrDie("finetune step");
        ++batches;
      }
      std::fprintf(stderr, "  finetune epoch %zu: loss %.4f\n", epoch,
                   batches ? loss_sum / batches : 0.0);
    }
  }
  const double after = EvaluateAccuracy(trainer->net(), user.test);
  std::printf("user-device accuracy after  fine-tuning: %.2f%%  (%.2fs on "
              "device, no server round-trips)\n",
              100.0 * after, watch.Elapsed());
  std::printf("global test accuracy retained: %.2f%%\n",
              100.0 * EvaluateAccuracy(trainer->net(), global.test));
  return 0;
}
