// The §10.4 decision tree as a library call: for a handful of training
// regimes, print the recommended method and the paper-grounded rationale.
//
//   ./method_selector

#include <cstdio>

#include "src/core/method_selector.h"
#include "src/metrics/reporter.h"

int main() {
  using namespace sampnn;
  struct Case {
    const char* description;
    TrainingScenario scenario;
  };
  const Case cases[] = {
      {"laptop, mini-batch 20, 3 hidden layers", {20, 3, false}},
      {"laptop, mini-batch 64, 10 hidden layers", {64, 10, false}},
      {"streaming SGD (batch 1), 2 layers, 8 cores", {1, 2, true}},
      {"streaming SGD (batch 1), 2 layers, 1 core", {1, 2, false}},
      {"streaming SGD (batch 1), 7 layers, 8 cores", {1, 7, true}},
  };
  TableReporter table("§10.4 decision tree", {"scenario", "recommendation"});
  for (const Case& c : cases) {
    const MethodRecommendation rec = RecommendMethod(c.scenario);
    table.AddRow({c.description, TrainerKindToString(rec.method)});
  }
  table.Print();
  std::printf("\nRationales:\n");
  for (const Case& c : cases) {
    const MethodRecommendation rec = RecommendMethod(c.scenario);
    std::printf("- %s\n    -> %s\n      %s\n", c.description,
                TrainerKindToString(rec.method), rec.rationale.c_str());
  }
  return 0;
}
