// Quickstart: train a 3-hidden-layer MLP on the synthetic MNIST stand-in
// with the paper's best-performing method (MC-approx, mini-batch 20) and
// print per-epoch progress plus the final confusion matrix.
//
//   ./quickstart [--epochs=N] [--scale=S]

#include <cstdio>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("quickstart");
  flags.AddInt("epochs", 5, "training epochs");
  flags.AddInt("scale", 25, "dataset downscale factor (1 = paper scale)");
  flags.AddInt("hidden", 128, "hidden units per layer");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;  // --help
  st.Abort("flags");

  // 1. Data: the MNIST-like benchmark, downscaled for a fast demo.
  DatasetSplits data =
      std::move(GenerateBenchmark("mnist", /*seed=*/7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("generate data");
  std::printf("train=%zu test=%zu val=%zu dim=%zu classes=%zu\n",
              data.train.size(), data.test.size(), data.validation.size(),
              data.train.dim(), data.train.num_classes());

  // 2. Model + method: paper defaults (§8.4) for MC-approx^M.
  const MlpConfig net = PaperMlpConfig(
      data.train, /*depth=*/3,
      static_cast<size_t>(flags.GetInt("hidden")), /*seed=*/42);
  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(TrainerKind::kMc, /*batch_size=*/20,
                                       /*seed=*/42);
  config.batch_size = 20;
  config.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  config.verbose = true;

  // 3. Train and report.
  ExperimentResult result =
      std::move(RunExperiment(net, config, data)).ValueOrDie("experiment");
  std::printf("\nmethod=%s arch=%s\n", result.method.c_str(),
              result.architecture.c_str());
  std::printf("final test accuracy: %.2f%%  (train %.2fs: forward %.2fs, "
              "backward %.2fs)\n",
              100.0 * result.final_test_accuracy, result.train_seconds,
              result.forward_seconds, result.backward_seconds);
  std::printf("\nConfusion matrix (test split):\n%s\n",
              result.confusion->ToString().c_str());
  return 0;
}
