// The §7 negative result, live: compares the Theorem 7.2 closed-form
// error-to-estimate ratio against empirical measurements on linear MLPs of
// increasing depth, under both oracle top-fraction selection (the theorem's
// assumption) and real ALSH selection.
//
//   ./deep_error_propagation [--max-depth=7] [--width=256]

#include <cstdio>

#include "src/core/error_propagation.h"
#include "src/metrics/reporter.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("deep_error_propagation");
  flags.AddInt("max-depth", 6, "deepest network to measure");
  flags.AddInt("width", 256, "hidden units per layer");
  flags.AddInt("inputs", 64, "number of probe inputs");
  flags.AddDouble("c", 5.0, "active/inactive weighted-sum ratio (paper: 5)");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;
  st.Abort("flags");

  const auto max_depth = static_cast<size_t>(flags.GetInt("max-depth"));
  const auto width = static_cast<size_t>(flags.GetInt("width"));
  const double c = flags.GetDouble("c");

  // The paper's in-text table (c = 5 → 0.2, 0.44, 0.72, 1.07, 1.48, 1.98).
  TableReporter theory("Theorem 7.2: e^k/a-hat^k for c=" +
                           TableReporter::Cell(c, 1),
                       {"k", "error/estimate"});
  for (size_t k = 1; k <= max_depth; ++k) {
    theory.AddRow({std::to_string(k),
                   TableReporter::Cell(TheoreticalErrorRatio(c, k))});
  }
  theory.Print();

  // Empirical: linear MLP (the §7 setting), deepest configuration, measured
  // layer by layer.
  MlpConfig cfg = MlpConfig::Uniform(width, 10, max_depth, width);
  cfg.hidden_activation = Activation::kLinear;
  cfg.initializer = Initializer::kXavier;
  cfg.seed = 42;
  Mlp net = std::move(Mlp::Create(cfg)).ValueOrDie("net");

  Rng rng(7);
  Matrix inputs = Matrix::RandomUniform(
      static_cast<size_t>(flags.GetInt("inputs")), width, rng, 0.0f, 1.0f);

  for (const char* mode : {"oracle", "alsh"}) {
    ErrorPropagationOptions options;
    options.selection = std::string(mode) == "oracle"
                            ? ActiveSelection::kOracleTopFraction
                            : ActiveSelection::kAlsh;
    options.active_fraction = 0.05;
    auto stats = std::move(MeasureErrorPropagation(net, inputs, options))
                     .ValueOrDie("measure");
    TableReporter table(std::string("Empirical error propagation (") + mode +
                            " active sets, 5% kept)",
                        {"layer k", "mean |a - a-hat|", "mean |a-hat|",
                         "error/estimate"});
    for (const auto& s : stats) {
      table.AddRow({std::to_string(s.layer),
                    TableReporter::Cell(s.mean_abs_error, 4),
                    TableReporter::Cell(s.mean_abs_estimate, 4),
                    TableReporter::Cell(s.error_ratio)});
    }
    table.Print();
  }
  std::printf("\nTakeaway: the error-to-estimate ratio grows with depth in "
              "every mode,\nmatching Theorem 7.2's exponential bound — "
              "feedforward approximation does not scale.\n");
  return 0;
}
