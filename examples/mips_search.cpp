// Standalone maximum inner-product search with the ALSH substrate (paper
// §5.2): index a database of vectors, query it, and compare recall@k and
// speed against the exact linear scan for several (K, L) settings.
//
//   ./mips_search [--items=N] [--dim=D] [--queries=Q]

#include <cstdio>

#include "src/lsh/mips.h"
#include "src/metrics/reporter.h"
#include "src/metrics/split_timer.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("mips_search");
  flags.AddInt("items", 2000, "database size");
  flags.AddInt("dim", 128, "vector dimension");
  flags.AddInt("queries", 50, "number of queries");
  flags.AddInt("topk", 10, "k for recall@k");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;
  st.Abort("flags");

  const auto items = static_cast<size_t>(flags.GetInt("items"));
  const auto dim = static_cast<size_t>(flags.GetInt("dim"));
  const auto num_queries = static_cast<size_t>(flags.GetInt("queries"));
  const auto topk = static_cast<size_t>(flags.GetInt("topk"));

  Rng rng(7);
  // Columns are the database vectors (as in a weight matrix).
  Matrix database = Matrix::RandomGaussian(dim, items, rng);
  Matrix queries = Matrix::RandomGaussian(num_queries, dim, rng);

  // Exact scan baseline timing.
  Stopwatch exact_watch;
  for (size_t q = 0; q < num_queries; ++q) {
    ExactMips(database, queries.Row(q), topk);
  }
  const double exact_s = exact_watch.Elapsed();

  TableReporter table("ALSH MIPS vs exact scan (recall@" +
                          std::to_string(topk) + ")",
                      {"K bits", "L tables", "recall", "query us", "exact us",
                       "candidates/query"});
  for (size_t bits : {4, 6, 8}) {
    for (size_t tables : {3, 5, 10}) {
      AlshIndexOptions options;
      options.bits = bits;
      options.tables = tables;
      AlshMips mips = std::move(AlshMips::Create(database, options, 42))
                          .ValueOrDie("index");
      const double recall = mips.RecallAtK(queries, topk);
      Stopwatch watch;
      size_t total_candidates = 0;
      std::vector<uint32_t> candidates;
      for (size_t q = 0; q < num_queries; ++q) {
        mips.QueryCandidates(queries.Row(q), &candidates);
        total_candidates += candidates.size();
      }
      const double query_s = watch.Elapsed();
      table.AddRow(
          {std::to_string(bits), std::to_string(tables),
           TableReporter::Cell(recall, 3),
           TableReporter::Cell(1e6 * query_s / num_queries, 1),
           TableReporter::Cell(1e6 * exact_s / num_queries, 1),
           TableReporter::Cell(
               static_cast<double>(total_candidates) / num_queries, 1)});
    }
  }
  table.Print();
  std::printf("\nHigher K -> fewer candidates per bucket (faster, lower "
              "recall); higher L -> more tables (slower, higher recall).\n");
  return 0;
}
