// Demonstrates the resilient training runtime: crash-safe checkpoints,
// resume, divergence sentinels with rollback, and deterministic fault
// injection.
//
//   ./resilient_training --method=alsh --checkpoint_dir=/tmp/ckpt
//       --checkpoint_every=50 [--resume] [--faults=grad-nan@120,kill@350]
//
// Fault specs also come from the SAMPNN_FAULTS environment variable, which
// is how scripts/crash_resume_smoke.sh SIGKILLs a run mid-epoch. After the
// run, one JSON line per epoch (loss/accuracy at full precision) goes to
// --epochs_jsonl; a killed-and-resumed run must reproduce the uninterrupted
// reference file bitwise.

#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/resilience/fault_injector.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("resilient_training");
  flags.AddString("method", "standard",
                  "standard|dropout|adaptive-dropout|alsh|mc");
  flags.AddString("dataset", "mnist", "synthetic benchmark family");
  flags.AddInt("epochs", 3, "training epochs");
  flags.AddInt("scale", 200, "dataset downscale factor");
  flags.AddInt("batch", 20, "minibatch size");
  flags.AddInt("hidden", 64, "hidden units per layer");
  flags.AddInt("depth", 2, "hidden layers");
  flags.AddInt("seed", 42, "weight/trainer seed");
  flags.AddString("checkpoint_dir", "", "checkpoint directory (empty = off)");
  flags.AddInt("checkpoint_every", 0,
               "batches between checkpoints (0 = epoch boundaries)");
  flags.AddInt("retain", 3, "checkpoints kept (0 = all)");
  flags.AddBool("resume", false, "resume from the latest valid checkpoint");
  flags.AddBool("sentinel", false, "enable divergence sentinels + rollback");
  flags.AddDouble("spike_factor", 25.0, "loss-spike trip factor over EWMA");
  flags.AddInt("max_retries", 3, "rollbacks per snapshot before giving up");
  flags.AddDouble("lr_backoff", 0.5, "learning-rate multiplier per rollback");
  flags.AddString("faults", "",
                  "fault spec, e.g. grad-nan@120,kill@350 "
                  "(SAMPNN_FAULTS is read when this is empty)");
  flags.AddString("epochs_jsonl", "",
                  "write one JSON line per epoch here after the run");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;
  st.Abort("flags");

  if (!flags.GetString("faults").empty()) {
    FaultInjector injector =
        std::move(FaultInjector::Parse(flags.GetString("faults")))
            .ValueOrDie("faults");
    FaultInjector::InstallGlobal(std::move(injector));
  } else {
    FaultInjector::InstallGlobalFromEnv().Abort("SAMPNN_FAULTS");
  }

  const TrainerKind kind =
      std::move(TrainerKindFromString(flags.GetString("method")))
          .ValueOrDie("method");
  const size_t batch = static_cast<size_t>(flags.GetInt("batch"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  DatasetSplits data =
      std::move(GenerateBenchmark(flags.GetString("dataset"), 7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("generate data");
  const MlpConfig net =
      PaperMlpConfig(data.train, static_cast<size_t>(flags.GetInt("depth")),
                     static_cast<size_t>(flags.GetInt("hidden")), seed);

  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(kind, batch, seed);
  // Bitwise crash-resume reproducibility needs a deterministic batch
  // stream; HOGWILD parallelism would break it, so stay single-threaded.
  config.trainer.alsh.threads = 1;
  config.batch_size = batch;
  config.epochs = static_cast<size_t>(flags.GetInt("epochs"));
  config.verbose = true;
  config.resilience.checkpoint_dir = flags.GetString("checkpoint_dir");
  config.resilience.checkpoint_every =
      static_cast<size_t>(flags.GetInt("checkpoint_every"));
  config.resilience.retain = static_cast<size_t>(flags.GetInt("retain"));
  config.resilience.resume = flags.GetBool("resume");
  config.resilience.sentinel.enabled = flags.GetBool("sentinel");
  config.resilience.sentinel.spike_factor = flags.GetDouble("spike_factor");
  config.resilience.sentinel.max_retries =
      static_cast<size_t>(flags.GetInt("max_retries"));
  config.resilience.sentinel.lr_backoff =
      static_cast<float>(flags.GetDouble("lr_backoff"));

  auto result_or = RunExperiment(net, config, data);
  if (!result_or.ok()) {
    std::fprintf(stderr, "resilient_training: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const ExperimentResult result = std::move(result_or).value();
  std::printf("%s: %zu epochs, final test accuracy %.2f%% (%.2fs train)\n",
              result.method.c_str(), result.epochs.size(),
              100.0 * result.final_test_accuracy, result.train_seconds);

  const std::string& jsonl = flags.GetString("epochs_jsonl");
  if (!jsonl.empty()) {
    // A resumed run's result holds ALL epochs (the finished ones ride along
    // in the checkpoint payload), so this file is complete either way and
    // diffs 1:1 against an uninterrupted run's. Full %.17g precision makes
    // the comparison bitwise, not approximate.
    std::FILE* f = std::fopen(jsonl.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "resilient_training: cannot write %s\n",
                   jsonl.c_str());
      return 1;
    }
    for (const EpochRecord& r : result.epochs) {
      std::fprintf(f,
                   "{\"epoch\": %zu, \"train_loss\": %.17g, "
                   "\"test_accuracy\": %.17g, \"validation_accuracy\": "
                   "%.17g}\n",
                   r.epoch, r.train_loss, r.test_accuracy,
                   r.validation_accuracy);
    }
    std::fclose(f);
    std::printf("wrote %s\n", jsonl.c_str());
  }
  return 0;
}
