// serve_mlp: train a small MLP on the synthetic benchmark, stand it up
// behind the deadline-aware InferenceService, and hammer it with concurrent
// clients — optionally with injected serving faults — then print the
// outcome mix as JSON. This is the binary behind the CI overload-smoke job
// (scripts/check_serve_smoke.py asserts on its output).
//
//   ./serve_mlp --backend=alsh --requests=400 --queue-cap=16
//               --deadline-ms=50 --faults="delay@20,hang@40"
//
// Exit code 0 unless setup itself fails; overload outcomes (sheds, expired
// deadlines, watchdog trips) are data, not errors.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/resilience/fault_injector.h"
#include "src/serve/inference_service.h"
#include "src/util/flags.h"

using namespace sampnn;

namespace {

// Brief training loop (the serving demo needs a plausible model, not a
// converged one).
void TrainBriefly(Trainer* trainer, const Dataset& train, size_t epochs,
                  size_t batch_size) {
  Rng rng(7);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Matrix x;
  std::vector<int32_t> y;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin + batch_size <= train.size();
         begin += batch_size) {
      const std::span<const size_t> indices(order.data() + begin, batch_size);
      train.FillBatch(indices, &x, &y);
      std::move(trainer->Step(x, y)).ValueOrDie("train step");
    }
  }
}

std::string StatsToJson(const ServeStats& s, const std::string& backend,
                        const ServeOptions& options, uint64_t client_ok,
                        uint64_t client_degraded) {
  std::ostringstream out;
  out << "{\"backend\":\"" << backend << "\""
      << ",\"queue_capacity\":" << options.queue_capacity
      << ",\"workers\":" << options.workers
      << ",\"default_deadline_ms\":" << options.default_deadline_ms
      << ",\"submitted\":" << s.submitted << ",\"admitted\":" << s.admitted
      << ",\"shed\":" << s.shed << ",\"completed\":" << s.completed
      << ",\"completed_degraded\":" << s.completed_degraded
      << ",\"deadline_exceeded\":" << s.deadline_exceeded
      << ",\"cancelled\":" << s.cancelled
      << ",\"watchdog_trips\":" << s.watchdog_trips
      << ",\"degrade_transitions\":" << s.degrade_transitions
      << ",\"client_ok\":" << client_ok
      << ",\"client_degraded\":" << client_degraded << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("serve_mlp");
  flags.AddString("backend", "dense", "dense | alsh | mc");
  flags.AddInt("epochs", 1, "brief training epochs before serving");
  flags.AddInt("scale", 50, "dataset downscale factor");
  flags.AddInt("hidden", 64, "hidden units per layer");
  flags.AddInt("requests", 200, "total requests across all clients");
  flags.AddInt("client-threads", 4, "concurrent submitting threads");
  flags.AddInt("inflight-per-client", 8,
               "outstanding requests per client before it waits on the "
               "oldest (keeps admissions flowing instead of one burst)");
  flags.AddInt("queue-cap", 0, "admission queue bound (0 = env/default)");
  flags.AddInt("deadline-ms", 0, "per-request deadline (0 = env/default)");
  flags.AddInt("workers", 2, "inference worker threads");
  flags.AddInt("max-batch", 8, "micro-batch cap when healthy");
  flags.AddInt("watchdog-budget-ms", 200, "batch runtime before a trip");
  flags.AddString("faults", "",
                  "fault spec (delay@N,hang@N,reject-admission@N); "
                  "overrides SAMPNN_FAULTS");
  flags.AddString("json-out", "", "also write the JSON summary to this file");
  flags.AddInt("statusz-port", -1,
               "loopback introspection port (-1 = off, 0 = ephemeral); the "
               "bound port is announced on stderr as 'statusz: ...'");
  flags.AddInt("hold-ms", 0,
               "keep the service (and its statusz endpoints) up this long "
               "after the client load finishes, so external scrapers can "
               "read the post-traffic metrics");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;  // --help
  st.Abort("flags");

  // 1. Data + a briefly trained model.
  DatasetSplits data =
      std::move(GenerateBenchmark("mnist", /*seed=*/7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("generate data");
  const std::string backend_name = flags.GetString("backend");
  const TrainerKind kind =
      backend_name == "alsh" ? TrainerKind::kAlsh : TrainerKind::kMc;
  const MlpConfig net_config = PaperMlpConfig(
      data.train, /*depth=*/3, static_cast<size_t>(flags.GetInt("hidden")),
      /*seed=*/42);
  TrainerOptions trainer_options =
      PaperTrainerOptions(kind, /*batch_size=*/20, /*seed=*/42);

  std::unique_ptr<ModelBackend> backend;
  if (backend_name == "alsh") {
    // The ALSH backend owns the trainer: serving probes the same hash
    // tables training built.
    Mlp net = std::move(Mlp::Create(net_config)).ValueOrDie("net");
    std::unique_ptr<AlshTrainer> trainer =
        std::move(AlshTrainer::Create(std::move(net), trainer_options.alsh,
                                      trainer_options.learning_rate,
                                      trainer_options.seed))
            .ValueOrDie("alsh trainer");
    TrainBriefly(trainer.get(), data.train,
                 static_cast<size_t>(flags.GetInt("epochs")), 20);
    backend = MakeAlshBackend(std::move(trainer));
  } else if (backend_name == "mc" || backend_name == "dense") {
    std::unique_ptr<Trainer> trainer =
        std::move(MakeTrainer(net_config, trainer_options)).ValueOrDie("trainer");
    TrainBriefly(trainer.get(), data.train,
                 static_cast<size_t>(flags.GetInt("epochs")), 20);
    backend = backend_name == "mc"
                  ? MakeMcBackend(trainer->net(), McBackendOptions{})
                  : MakeDenseBackend(trainer->net());
  } else {
    std::fprintf(stderr, "unknown --backend=%s\n", backend_name.c_str());
    return 1;
  }

  // 2. Faults: --faults wins over SAMPNN_FAULTS. Installed after training
  // so the admitted-request step counter starts at zero.
  if (!flags.GetString("faults").empty()) {
    FaultInjector::InstallGlobal(
        std::move(FaultInjector::Parse(flags.GetString("faults")))
            .ValueOrDie("faults"));
  } else {
    FaultInjector::InstallGlobalFromEnv().Abort("SAMPNN_FAULTS");
  }

  // 3. The service. Env defaults (SAMPNN_SERVE_QUEUE_CAP /
  // SAMPNN_SERVE_DEADLINE_MS), explicit flags override.
  ServeOptions options = ServeOptions::FromEnv();
  if (flags.GetInt("queue-cap") > 0) {
    options.queue_capacity = static_cast<size_t>(flags.GetInt("queue-cap"));
  }
  if (flags.GetInt("deadline-ms") > 0) {
    options.default_deadline_ms = flags.GetInt("deadline-ms");
  }
  options.workers = static_cast<size_t>(flags.GetInt("workers"));
  options.max_batch = static_cast<size_t>(flags.GetInt("max-batch"));
  options.watchdog_budget_ms = flags.GetInt("watchdog-budget-ms");
  if (flags.GetInt("statusz-port") >= 0) {
    options.statusz_port = flags.GetInt("statusz-port");
  }
  std::unique_ptr<InferenceService> service =
      std::move(InferenceService::Create(std::move(backend), options))
          .ValueOrDie("service");
  if (service->statusz_port() >= 0) {
    // Parseable announcement for scrapers (scripts/obs_smoke.sh greps it).
    std::fprintf(stderr, "statusz: listening on 127.0.0.1:%d\n",
                 service->statusz_port());
  }

  // 4. Concurrent clients submitting as fast as the service will listen.
  const size_t total_requests = static_cast<size_t>(flags.GetInt("requests"));
  const size_t client_threads =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("client-threads")));
  std::atomic<uint64_t> client_ok{0}, client_degraded{0};
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (size_t c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      const size_t window = std::max<size_t>(
          1, static_cast<size_t>(flags.GetInt("inflight-per-client")));
      std::deque<std::future<InferenceResult>> inflight;
      const auto settle = [&](std::future<InferenceResult> f) {
        const InferenceResult result = f.get();
        if (result.status.ok()) {
          client_ok.fetch_add(1, std::memory_order_relaxed);
          if (result.degraded) {
            client_degraded.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      for (size_t i = c; i < total_requests; i += client_threads) {
        const std::span<const float> row =
            data.test.Example(i % data.test.size());
        inflight.push_back(
            service->Submit(std::vector<float>(row.begin(), row.end())));
        if (inflight.size() >= window) {
          settle(std::move(inflight.front()));
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        settle(std::move(inflight.front()));
        inflight.pop_front();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (flags.GetInt("hold-ms") > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.GetInt("hold-ms")));
  }
  service->Stop(InferenceService::StopMode::kDrain);

  // 5. Report.
  const ServeStats stats = service->Stats();
  const std::string json = StatsToJson(
      stats, backend_name, service->options(),
      client_ok.load(), client_degraded.load());
  std::printf("%s\n", json.c_str());
  const std::string json_out = flags.GetString("json-out");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
  }
  FaultInjector::ClearGlobal();
  return 0;
}
