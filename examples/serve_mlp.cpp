// serve_mlp: train a small MLP on the synthetic benchmark, stand it up
// behind the deadline-aware InferenceService, and hammer it with concurrent
// clients — optionally with injected serving faults — then print the
// outcome mix as JSON. This is the binary behind the CI overload-smoke job
// (scripts/check_serve_smoke.py asserts on its output).
//
//   ./serve_mlp --backend=alsh --requests=400 --queue-cap=16
//               --deadline-ms=50 --faults="delay@20,hang@40"
//
// Multi-tenant / hot-swap mode (the CI hot-swap-smoke job,
// scripts/check_hot_swap.py asserts on the output):
//
//   ./serve_mlp --tenants="heavy=24:3,light=12"
//               --promote-script="good,corrupt,regressed"
//               --promote-interval-ms=50 --registry-dir=/tmp/reg
//
// --promote-script drives one promotion attempt per entry while the client
// load runs: "good" promotes a healthy copy of the served model, "corrupt"
// and "regressed" arm the registry's local fault injector so that attempt
// is rejected at the matching gate. With --registry-dir, good candidates
// round-trip through a framed checkpoint (PromoteFromDir) so provenance is
// real.
//
// Exit code 0 unless setup itself fails; overload outcomes (sheds, expired
// deadlines, watchdog trips) are data, not errors.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/nn/serialize.h"
#include "src/registry/model_registry.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault_injector.h"
#include "src/serve/inference_service.h"
#include "src/util/flags.h"

using namespace sampnn;

namespace {

// Brief training loop (the serving demo needs a plausible model, not a
// converged one).
void TrainBriefly(Trainer* trainer, const Dataset& train, size_t epochs,
                  size_t batch_size) {
  Rng rng(7);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Matrix x;
  std::vector<int32_t> y;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin + batch_size <= train.size();
         begin += batch_size) {
      const std::span<const size_t> indices(order.data() + begin, batch_size);
      train.FillBatch(indices, &x, &y);
      std::move(trainer->Step(x, y)).ValueOrDie("train step");
    }
  }
}

std::string StatsToJson(const ServeStats& s, const std::string& backend,
                        const ServeOptions& options, uint64_t client_ok,
                        uint64_t client_degraded,
                        const ModelRegistry* registry) {
  std::ostringstream out;
  out << "{\"backend\":\"" << backend << "\""
      << ",\"queue_capacity\":" << options.queue_capacity
      << ",\"workers\":" << options.workers
      << ",\"default_deadline_ms\":" << options.default_deadline_ms
      << ",\"submitted\":" << s.submitted << ",\"admitted\":" << s.admitted
      << ",\"shed\":" << s.shed << ",\"completed\":" << s.completed
      << ",\"completed_degraded\":" << s.completed_degraded
      << ",\"deadline_exceeded\":" << s.deadline_exceeded
      << ",\"cancelled\":" << s.cancelled
      << ",\"watchdog_trips\":" << s.watchdog_trips
      << ",\"degrade_transitions\":" << s.degrade_transitions
      << ",\"client_ok\":" << client_ok
      << ",\"client_degraded\":" << client_degraded;
  out << ",\"tenants\":[";
  for (size_t i = 0; i < s.tenants.size(); ++i) {
    const TenantStats& t = s.tenants[i];
    out << (i == 0 ? "" : ",") << "{\"name\":\"" << t.name << "\""
        << ",\"quota\":" << t.quota << ",\"weight\":" << t.weight
        << ",\"submitted\":" << t.submitted << ",\"admitted\":" << t.admitted
        << ",\"shed\":" << t.shed << ",\"completed\":" << t.completed
        << ",\"completed_degraded\":" << t.completed_degraded
        << ",\"deadline_exceeded\":" << t.deadline_exceeded
        << ",\"cancelled\":" << t.cancelled << "}";
  }
  out << "]";
  if (registry != nullptr) {
    const RegistryStats r = registry->stats();
    out << ",\"registry\":{\"live_version\":" << registry->live_version()
        << ",\"promote_attempted\":" << r.promotions_attempted
        << ",\"promoted\":" << r.promoted
        << ",\"rejected_corrupt\":" << r.rejected_corrupt
        << ",\"rejected_regressed\":" << r.rejected_regressed
        << ",\"rejected_incompatible\":" << r.rejected_incompatible
        << ",\"rejected_raced\":" << r.rejected_raced
        << ",\"rollbacks\":" << r.rollbacks << "}";
  }
  out << "}";
  return out.str();
}

// Turns a promote script ("good,corrupt,regressed,...") into the registry's
// local fault spec: attempt i (1-based) is armed to fail at the named gate,
// "good" attempts are left alone. Returns nullopt on an unknown word.
std::optional<std::string> PromoteScriptToFaultSpec(
    const std::vector<std::string>& script) {
  std::string spec;
  for (size_t i = 0; i < script.size(); ++i) {
    const std::string& word = script[i];
    std::string kind;
    if (word == "good") continue;
    if (word == "corrupt") kind = "promote-corrupt";
    else if (word == "regressed") kind = "promote-regressed";
    else if (word == "raced") kind = "swap-race";
    else return std::nullopt;
    if (!spec.empty()) spec += ",";
    spec += kind + "@" + std::to_string(i + 1);
  }
  return spec;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma > pos) parts.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("serve_mlp");
  flags.AddString("backend", "dense", "dense | alsh | mc");
  flags.AddInt("epochs", 1, "brief training epochs before serving");
  flags.AddInt("scale", 50, "dataset downscale factor");
  flags.AddInt("hidden", 64, "hidden units per layer");
  flags.AddInt("requests", 200, "total requests across all clients");
  flags.AddInt("client-threads", 4, "concurrent submitting threads");
  flags.AddInt("inflight-per-client", 8,
               "outstanding requests per client before it waits on the "
               "oldest (keeps admissions flowing instead of one burst)");
  flags.AddInt("queue-cap", 0, "admission queue bound (0 = env/default)");
  flags.AddInt("deadline-ms", 0, "per-request deadline (0 = env/default)");
  flags.AddInt("workers", 2, "inference worker threads");
  flags.AddInt("max-batch", 8, "micro-batch cap when healthy");
  flags.AddInt("watchdog-budget-ms", 200, "batch runtime before a trip");
  flags.AddString("faults", "",
                  "fault spec (delay@N,hang@N,reject-admission@N); "
                  "overrides SAMPNN_FAULTS");
  flags.AddString("tenants", "",
                  "per-tenant quotas 'name=quota[:weight],...'; overrides "
                  "SAMPNN_TENANT_QUOTAS");
  flags.AddString("promote-script", "",
                  "comma list of good|corrupt|regressed|raced: one "
                  "promotion attempt per entry while the load runs");
  flags.AddInt("promote-interval-ms", 50,
               "delay before each scripted promotion attempt");
  flags.AddString("registry-dir", "",
                  "stage good candidates through framed checkpoints here "
                  "(PromoteFromDir) instead of promoting in-memory models");
  flags.AddString("json-out", "", "also write the JSON summary to this file");
  flags.AddInt("statusz-port", -1,
               "loopback introspection port (-1 = off, 0 = ephemeral); the "
               "bound port is announced on stderr as 'statusz: ...'");
  flags.AddInt("hold-ms", 0,
               "keep the service (and its statusz endpoints) up this long "
               "after the client load finishes, so external scrapers can "
               "read the post-traffic metrics");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;  // --help
  st.Abort("flags");

  // 1. Data + a briefly trained model.
  DatasetSplits data =
      std::move(GenerateBenchmark("mnist", /*seed=*/7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("generate data");
  const std::string backend_name = flags.GetString("backend");
  const TrainerKind kind =
      backend_name == "alsh" ? TrainerKind::kAlsh : TrainerKind::kMc;
  const MlpConfig net_config = PaperMlpConfig(
      data.train, /*depth=*/3, static_cast<size_t>(flags.GetInt("hidden")),
      /*seed=*/42);
  TrainerOptions trainer_options =
      PaperTrainerOptions(kind, /*batch_size=*/20, /*seed=*/42);

  // trained_model is kept aside as the "good" promotion candidate: promoting
  // a copy of the served model is guaranteed to clear the canary gate.
  std::unique_ptr<ModelBackend> backend;
  std::optional<Mlp> trained_model;
  if (backend_name == "alsh") {
    // The ALSH backend owns the trainer: serving probes the same hash
    // tables training built.
    Mlp net = std::move(Mlp::Create(net_config)).ValueOrDie("net");
    std::unique_ptr<AlshTrainer> trainer =
        std::move(AlshTrainer::Create(std::move(net), trainer_options.alsh,
                                      trainer_options.learning_rate,
                                      trainer_options.seed))
            .ValueOrDie("alsh trainer");
    TrainBriefly(trainer.get(), data.train,
                 static_cast<size_t>(flags.GetInt("epochs")), 20);
    trained_model = trainer->net();
    backend = MakeAlshBackend(std::move(trainer));
  } else if (backend_name == "mc" || backend_name == "dense") {
    std::unique_ptr<Trainer> trainer =
        std::move(MakeTrainer(net_config, trainer_options)).ValueOrDie("trainer");
    TrainBriefly(trainer.get(), data.train,
                 static_cast<size_t>(flags.GetInt("epochs")), 20);
    trained_model = trainer->net();
    backend = backend_name == "mc"
                  ? MakeMcBackend(trainer->net(), McBackendOptions{})
                  : MakeDenseBackend(trainer->net());
  } else {
    std::fprintf(stderr, "unknown --backend=%s\n", backend_name.c_str());
    return 1;
  }

  // 2. Faults: --faults wins over SAMPNN_FAULTS. Installed after training
  // so the admitted-request step counter starts at zero.
  if (!flags.GetString("faults").empty()) {
    FaultInjector::InstallGlobal(
        std::move(FaultInjector::Parse(flags.GetString("faults")))
            .ValueOrDie("faults"));
  } else {
    FaultInjector::InstallGlobalFromEnv().Abort("SAMPNN_FAULTS");
  }

  // 3. The service. Env defaults (SAMPNN_SERVE_QUEUE_CAP /
  // SAMPNN_SERVE_DEADLINE_MS), explicit flags override.
  ServeOptions options = ServeOptions::FromEnv();
  if (flags.GetInt("queue-cap") > 0) {
    options.queue_capacity = static_cast<size_t>(flags.GetInt("queue-cap"));
  }
  if (flags.GetInt("deadline-ms") > 0) {
    options.default_deadline_ms = flags.GetInt("deadline-ms");
  }
  options.workers = static_cast<size_t>(flags.GetInt("workers"));
  options.max_batch = static_cast<size_t>(flags.GetInt("max-batch"));
  options.watchdog_budget_ms = flags.GetInt("watchdog-budget-ms");
  if (flags.GetInt("statusz-port") >= 0) {
    options.statusz_port = flags.GetInt("statusz-port");
  }
  if (!flags.GetString("tenants").empty()) {
    options.tenants = std::move(ParseTenantQuotas(flags.GetString("tenants")))
                          .ValueOrDie("tenants");
  }
  // Client threads spread their requests round-robin over the configured
  // tenant names (before the service appends "default").
  std::vector<std::string> tenant_names;
  for (const TenantConfig& tenant : options.tenants) {
    tenant_names.push_back(tenant.name);
  }
  if (tenant_names.empty()) tenant_names.push_back(std::string(kDefaultTenant));

  const std::vector<std::string> promote_script =
      SplitCommas(flags.GetString("promote-script"));
  const std::optional<std::string> promote_faults =
      PromoteScriptToFaultSpec(promote_script);
  if (!promote_faults.has_value()) {
    std::fprintf(stderr, "bad --promote-script (want good|corrupt|regressed|"
                         "raced, comma separated)\n");
    return 1;
  }

  std::shared_ptr<ModelRegistry> registry;
  std::unique_ptr<InferenceService> service;
  if (!promote_script.empty()) {
    RegistryOptions registry_options = RegistryOptions::FromEnv();
    registry_options.promote_fault_spec = *promote_faults;
    // Mirror the service's observability gate: a /metricsz scrape must see
    // registry.* series even when SAMPNN_TELEMETRY is unset.
    const bool statusz_on = options.statusz_port >= 0;
    registry_options.obs_enabled = [statusz_on] {
      return statusz_on || TelemetryEnabled();
    };
    registry = std::move(ModelRegistry::Create(
                             std::shared_ptr<ModelBackend>(std::move(backend)),
                             [](Mlp model) -> StatusOr<std::shared_ptr<ModelBackend>> {
                               return std::shared_ptr<ModelBackend>(
                                   MakeDenseBackend(std::move(model)));
                             },
                             registry_options))
                   .ValueOrDie("registry");
    service = std::move(InferenceService::Create(registry, options))
                  .ValueOrDie("service");
  } else {
    service = std::move(InferenceService::Create(std::move(backend), options))
                  .ValueOrDie("service");
  }
  if (service->statusz_port() >= 0) {
    // Parseable announcement for scrapers (scripts/obs_smoke.sh greps it).
    std::fprintf(stderr, "statusz: listening on 127.0.0.1:%d\n",
                 service->statusz_port());
  }

  // 4. Concurrent clients submitting as fast as the service will listen.
  const size_t total_requests = static_cast<size_t>(flags.GetInt("requests"));
  const size_t client_threads =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("client-threads")));
  std::atomic<uint64_t> client_ok{0}, client_degraded{0};
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (size_t c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      const size_t window = std::max<size_t>(
          1, static_cast<size_t>(flags.GetInt("inflight-per-client")));
      std::deque<std::future<InferenceResult>> inflight;
      const auto settle = [&](std::future<InferenceResult> f) {
        const InferenceResult result = f.get();
        if (result.status.ok()) {
          client_ok.fetch_add(1, std::memory_order_relaxed);
          if (result.degraded) {
            client_degraded.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      for (size_t i = c; i < total_requests; i += client_threads) {
        const std::span<const float> row =
            data.test.Example(i % data.test.size());
        inflight.push_back(service->Submit(
            tenant_names[i % tenant_names.size()],
            std::vector<float>(row.begin(), row.end())));
        if (inflight.size() >= window) {
          settle(std::move(inflight.front()));
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        settle(std::move(inflight.front()));
        inflight.pop_front();
      }
    });
  }
  // 4b. Scripted promotions, concurrent with the client load: good entries
  // hot-swap the model mid-traffic, corrupt/regressed/raced entries are
  // rejected by the matching gate while the prior version keeps serving.
  std::thread promoter;
  if (!promote_script.empty()) {
    promoter = std::thread([&] {
      // Canary: a small labelled slice of the held-out test set.
      CanaryBatch canary;
      std::vector<size_t> indices(std::min<size_t>(16, data.test.size()));
      std::iota(indices.begin(), indices.end(), size_t{0});
      data.test.FillBatch(indices, &canary.inputs, &canary.labels);
      const std::string dir = flags.GetString("registry-dir");
      const int64_t interval =
          std::max<int64_t>(1, flags.GetInt("promote-interval-ms"));
      for (size_t i = 0; i < promote_script.size(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval));
        StatusOr<uint64_t> version = [&]() -> StatusOr<uint64_t> {
          if (dir.empty()) return registry->Promote(*trained_model, {}, canary);
          // Stage through a framed checkpoint so provenance (path, step,
          // payload CRC) is real; injected faults still hit their gates.
          std::ostringstream payload;
          SAMPNN_RETURN_NOT_OK(SaveMlp(*trained_model, payload));
          SAMPNN_ASSIGN_OR_RETURN(
              CheckpointWriter writer,
              CheckpointWriter::Create({dir, /*retain=*/4}));
          SAMPNN_RETURN_NOT_OK(writer.Write(i + 1, payload.str()));
          return registry->PromoteFromDir(dir, canary);
        }();
        if (version.ok()) {
          std::fprintf(stderr, "promote[%zu] %s: live v%llu\n", i + 1,
                       promote_script[i].c_str(),
                       static_cast<unsigned long long>(version.value()));
        } else {
          std::fprintf(stderr, "promote[%zu] %s: %s\n", i + 1,
                       promote_script[i].c_str(),
                       version.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (promoter.joinable()) promoter.join();
  if (flags.GetInt("hold-ms") > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.GetInt("hold-ms")));
  }
  service->Stop(InferenceService::StopMode::kDrain);

  // 5. Report.
  const ServeStats stats = service->Stats();
  const std::string json = StatsToJson(
      stats, backend_name, service->options(),
      client_ok.load(), client_degraded.load(), service->registry());
  std::printf("%s\n", json.c_str());
  const std::string json_out = flags.GetString("json-out");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
      return 1;
    }
  }
  FaultInjector::ClearGlobal();
  return 0;
}
