// The §8.4 convolutional setting as an example: train a ResNet-style conv
// feature extractor (exact) with a two-FC-layer classifier whose backward
// pass is MC-approximated, on the CIFAR-like benchmark — then compare
// against the exact classifier.
//
//   ./conv_image_classifier [--dataset=cifar10] [--epochs=N]

#include <cstdio>

#include "src/cnn/conv_classifier.h"
#include "src/data/batcher.h"
#include "src/data/synthetic.h"
#include "src/metrics/split_timer.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  using namespace sampnn;
  Flags flags("conv_image_classifier");
  flags.AddString("dataset", "mnist", "image benchmark dataset");
  flags.AddInt("scale", 100, "dataset downscale factor");
  flags.AddInt("epochs", 10, "training epochs");
  flags.AddString("classifier", "mc", "classifier mode: exact|mc|dropout");
  Status st = flags.Parse(argc, argv);
  if (st.IsFailedPrecondition()) return 0;
  st.Abort("flags");

  const std::string dataset = flags.GetString("dataset");
  DatasetSplits data =
      std::move(GenerateBenchmark(dataset, 7,
                                  static_cast<size_t>(flags.GetInt("scale"))))
          .ValueOrDie("data");
  const auto spec = std::move(GetBenchmarkSpec(dataset)).ValueOrDie("spec");

  ConvClassifierConfig cfg;
  cfg.features.input = {spec.synthetic.channels, spec.synthetic.image_height,
                        spec.synthetic.image_width};
  cfg.features.stem_channels = 12;
  cfg.features.num_blocks = 2;
  cfg.hidden = 128;
  cfg.num_classes = data.train.num_classes();
  cfg.mode = std::move(ClassifierModeFromString(flags.GetString("classifier")))
                 .ValueOrDie("mode");
  cfg.learning_rate = 0.01f;  // pure SGD, per the paper's CIFAR setting
  auto model = std::move(ConvClassifier::Create(cfg)).ValueOrDie("model");

  std::printf("conv+FC model on %s: %zu params, classifier mode '%s'\n",
              dataset.c_str(), model.num_params(),
              flags.GetString("classifier").c_str());

  Batcher batcher(data.train, 20, 7);
  Matrix x;
  std::vector<int32_t> y;
  const auto epochs = static_cast<size_t>(flags.GetInt("epochs"));
  Stopwatch watch;
  for (size_t e = 1; e <= epochs; ++e) {
    double loss_sum = 0.0;
    size_t batches = 0;
    while (batcher.Next(&x, &y)) {
      loss_sum += std::move(model.Step(x, y)).ValueOrDie("step");
      ++batches;
    }
    std::printf("epoch %2zu  loss %.4f  test acc %.2f%%\n", e,
                loss_sum / batches, 100.0 * model.Evaluate(data.test));
  }
  std::printf("\ntrained in %.2fs — conv fwd %.2fs, conv bwd %.2fs, "
              "classifier fwd %.2fs, classifier bwd %.2fs\n",
              watch.Elapsed(), model.timer().Seconds("conv_forward"),
              model.timer().Seconds("conv_backward"),
              model.timer().Seconds(kPhaseForward),
              model.timer().Seconds(kPhaseBackward));
  std::printf("The approximation touches only the classifier phases; the "
              "conv phases dominate, which is why the paper keeps them "
              "exact (§8.4).\n");
  return 0;
}
