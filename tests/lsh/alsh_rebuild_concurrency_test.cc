// Concurrency tests for the parallel ALSH hash-table rebuild path
// (AlshTrainer::MaybeRebuild fans Build() out across layers on the
// ThreadPool). Runs under TSan via the `lsh`/`concurrency` ctest labels.
//
// The contract being exercised:
//  - Build() calls on *distinct* AlshIndex instances may run concurrently
//    (the weights they read are not mutated during a rebuild).
//  - Query() is thread-safe against concurrent Query() on the same index.
//  - Build() and Query() on the same index must be sequenced by a barrier
//    (here: ThreadPool::Wait / ParallelFor's implicit join), matching the
//    rebuild-then-train phases of the ALSH trainer.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/lsh/hash_table.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace sampnn {
namespace {

constexpr size_t kDim = 24;
constexpr size_t kNodes = 64;
constexpr size_t kLayers = 4;

AlshIndexOptions SmallOptions() {
  AlshIndexOptions opts;
  opts.bits = 4;
  opts.tables = 3;
  return opts;
}

std::vector<Matrix> MakeWeights(uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> weights;
  weights.reserve(kLayers);
  for (size_t k = 0; k < kLayers; ++k) {
    weights.push_back(Matrix::RandomGaussian(kDim, kNodes, rng));
  }
  return weights;
}

std::vector<AlshIndex> MakeIndexes() {
  std::vector<AlshIndex> indexes;
  indexes.reserve(kLayers);
  for (size_t k = 0; k < kLayers; ++k) {
    indexes.push_back(
        std::move(AlshIndex::Create(kDim, SmallOptions(), 100 + k))
            .ValueOrDie("create index"));
  }
  return indexes;
}

TEST(AlshRebuildConcurrencyTest, ParallelPerLayerRebuild) {
  auto weights = MakeWeights(7);
  auto indexes = MakeIndexes();
  ThreadPool pool(4);
  // The MaybeRebuild pattern: one Build per layer, fanned out on the pool.
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(kLayers, [&indexes, &weights](size_t k) {
      indexes[k].Build(weights[k]);
    });
  }
  for (size_t k = 0; k < kLayers; ++k) {
    EXPECT_EQ(indexes[k].num_items(), kNodes);
    EXPECT_EQ(indexes[k].build_count(), 5u);
  }
}

TEST(AlshRebuildConcurrencyTest, ConcurrentQueriesOnSharedIndex) {
  auto weights = MakeWeights(11);
  auto index = std::move(AlshIndex::Create(kDim, SmallOptions(), 42))
                   .ValueOrDie("create index");
  index.Build(weights[0]);

  ThreadPool pool(4);
  std::atomic<size_t> total_candidates{0};
  constexpr size_t kQueries = 256;
  pool.ParallelFor(kQueries, [&index, &total_candidates](size_t q) {
    Rng rng(1000 + q);
    std::vector<float> query(kDim);
    for (auto& v : query) v = rng.NextGaussian();
    std::vector<uint32_t> out;
    index.Query(query, &out);
    for (uint32_t id : out) ASSERT_LT(id, kNodes);
    total_candidates.fetch_add(out.size());
  });
  // Not a correctness bound, just evidence the queries did real work.
  EXPECT_GT(total_candidates.load(), 0u);
}

TEST(AlshRebuildConcurrencyTest, RebuildThenQueryRoundsAreSequenced) {
  auto indexes = MakeIndexes();
  ThreadPool pool(4);
  Rng wrng(3);
  for (int round = 0; round < 4; ++round) {
    // Phase 1: parallel rebuild with fresh weights (weights drift between
    // rounds, as they do between rebuild periods in training).
    auto weights = MakeWeights(50 + round);
    pool.ParallelFor(kLayers, [&indexes, &weights](size_t k) {
      indexes[k].Build(weights[k]);
    });
    // Phase 2: parallel queries against every layer's fresh tables. The
    // ParallelFor barrier above is the only synchronization — exactly the
    // trainer's rebuild/train phase boundary.
    pool.ParallelFor(kLayers * 16, [&indexes](size_t i) {
      const size_t k = i % kLayers;
      Rng rng(7000 + i);
      std::vector<float> query(kDim);
      for (auto& v : query) v = rng.NextGaussian();
      std::vector<uint32_t> out;
      indexes[k].Query(query, &out);
      for (uint32_t id : out) ASSERT_LT(id, kNodes);
    });
  }
  for (const auto& index : indexes) EXPECT_EQ(index.build_count(), 4u);
}

TEST(AlshRebuildConcurrencyTest, QueriesFromRawThreadsSeeConsistentTables) {
  auto weights = MakeWeights(21);
  auto index = std::move(AlshIndex::Create(kDim, SmallOptions(), 9))
                   .ValueOrDie("create index");
  index.Build(weights[0]);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&index, t] {
      Rng rng(400 + t);
      std::vector<float> query(kDim);
      std::vector<uint32_t> out;
      for (int i = 0; i < 100; ++i) {
        for (auto& v : query) v = rng.NextGaussian();
        index.Query(query, &out);
        // Sorted-unique postcondition must hold under concurrency.
        for (size_t j = 1; j < out.size(); ++j) {
          ASSERT_LT(out[j - 1], out[j]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace sampnn
