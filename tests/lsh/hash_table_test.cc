#include "src/lsh/hash_table.h"

#include <algorithm>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

AlshIndexOptions DefaultOptions() {
  AlshIndexOptions options;
  options.bits = 6;
  options.tables = 5;
  return options;
}

Matrix RandomColumns(size_t dim, size_t n, uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomGaussian(dim, n, rng);
}

TEST(AlshIndexTest, CreateValidates) {
  EXPECT_TRUE(
      AlshIndex::Create(0, DefaultOptions(), 1).status().IsInvalidArgument());
  AlshIndexOptions no_tables = DefaultOptions();
  no_tables.tables = 0;
  EXPECT_TRUE(AlshIndex::Create(8, no_tables, 1).status().IsInvalidArgument());
  AlshIndexOptions bad_m = DefaultOptions();
  bad_m.transform.m = 0;
  EXPECT_TRUE(AlshIndex::Create(8, bad_m, 1).status().IsInvalidArgument());
}

TEST(AlshIndexTest, QueryBeforeBuildIsEmpty) {
  auto index = std::move(AlshIndex::Create(8, DefaultOptions(), 1)).value();
  std::vector<float> q(8, 1.0f);
  std::vector<uint32_t> out{99};
  index.Query(q, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(index.num_items(), 0u);
}

TEST(AlshIndexTest, BuildIndexesAllColumns) {
  auto index = std::move(AlshIndex::Create(16, DefaultOptions(), 2)).value();
  Matrix w = RandomColumns(16, 100, 3);
  index.Build(w);
  EXPECT_EQ(index.num_items(), 100u);
  EXPECT_EQ(index.build_count(), 1u);
  const auto stats = index.ComputeStats();
  EXPECT_EQ(stats.num_tables, 5u);
  EXPECT_EQ(stats.buckets_per_table, 64u);
  // Every item lands in exactly one bucket per table.
  size_t total = 0;
  EXPECT_GT(stats.nonempty_buckets, 0u);
  total = static_cast<size_t>(stats.avg_nonempty_occupancy *
                              stats.nonempty_buckets + 0.5);
  EXPECT_EQ(total, 500u);  // 100 items x 5 tables
}

TEST(AlshIndexTest, QueryReturnsSortedUniqueIds) {
  auto index = std::move(AlshIndex::Create(16, DefaultOptions(), 4)).value();
  Matrix w = RandomColumns(16, 200, 5);
  index.Build(w);
  Rng rng(6);
  for (int t = 0; t < 20; ++t) {
    std::vector<float> q(16);
    for (auto& v : q) v = rng.NextGaussian();
    std::vector<uint32_t> out;
    index.Query(q, &out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end());
    for (uint32_t id : out) EXPECT_LT(id, 200u);
  }
}

TEST(AlshIndexTest, ItemHashedToItsOwnBucketIsRetrievable) {
  // Querying with (a multiple of) an indexed column must return that column:
  // after the P/Q transform both map to highly similar directions.
  auto index = std::move(AlshIndex::Create(24, DefaultOptions(), 7)).value();
  Matrix w = RandomColumns(24, 50, 8);
  index.Build(w);
  size_t hits = 0;
  for (size_t j = 0; j < 50; ++j) {
    std::vector<float> q = w.Col(j);
    std::vector<uint32_t> out;
    index.Query(q, &out);
    if (std::find(out.begin(), out.end(), static_cast<uint32_t>(j)) !=
        out.end()) {
      ++hits;
    }
  }
  // Not guaranteed per item (asymmetric transform), but should hold mostly.
  EXPECT_GT(hits, 25u);
}

TEST(AlshIndexTest, RebuildReflectsNewWeights) {
  auto index = std::move(AlshIndex::Create(8, DefaultOptions(), 9)).value();
  Matrix w1 = RandomColumns(8, 30, 10);
  index.Build(w1);
  EXPECT_EQ(index.build_count(), 1u);
  Matrix w2 = RandomColumns(8, 60, 11);
  index.Build(w2);
  EXPECT_EQ(index.build_count(), 2u);
  EXPECT_EQ(index.num_items(), 60u);
  std::vector<float> q(8, 0.5f);
  std::vector<uint32_t> out;
  index.Query(q, &out);
  for (uint32_t id : out) EXPECT_LT(id, 60u);
}

TEST(AlshIndexTest, BucketCapLimitsOccupancy) {
  AlshIndexOptions options = DefaultOptions();
  options.bits = 2;  // 4 buckets -> heavy collisions
  options.max_bucket_size = 5;
  auto index = std::move(AlshIndex::Create(8, options, 12)).value();
  Matrix w = RandomColumns(8, 300, 13);
  index.Build(w);
  EXPECT_LE(index.ComputeStats().max_bucket_occupancy, 5u);
}

TEST(AlshIndexTest, UncappedHotBucketsExceedCap) {
  AlshIndexOptions options = DefaultOptions();
  options.bits = 2;
  auto index = std::move(AlshIndex::Create(8, options, 12)).value();
  Matrix w = RandomColumns(8, 300, 13);
  index.Build(w);
  EXPECT_GT(index.ComputeStats().max_bucket_occupancy, 5u);
}

TEST(AlshIndexTest, ConcurrentQueriesAreSafe) {
  auto index = std::move(AlshIndex::Create(16, DefaultOptions(), 14)).value();
  Matrix w = RandomColumns(16, 150, 15);
  index.Build(w);
  // Reference results computed serially.
  std::vector<std::vector<float>> queries;
  std::vector<std::vector<uint32_t>> expected(8);
  Rng rng(16);
  for (int i = 0; i < 8; ++i) {
    std::vector<float> q(16);
    for (auto& v : q) v = rng.NextGaussian();
    queries.push_back(q);
    index.Query(queries.back(), &expected[i]);
  }
  std::vector<std::vector<uint32_t>> got(8);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back(
        [&index, &queries, &got, i] { index.Query(queries[i], &got[i]); });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[i], expected[i]);
}

TEST(AlshIndexTest, MoreTablesReturnMoreCandidates) {
  Matrix w = RandomColumns(16, 300, 17);
  AlshIndexOptions few = DefaultOptions();
  few.tables = 1;
  AlshIndexOptions many = DefaultOptions();
  many.tables = 10;
  auto index_few = std::move(AlshIndex::Create(16, few, 18)).value();
  auto index_many = std::move(AlshIndex::Create(16, many, 18)).value();
  index_few.Build(w);
  index_many.Build(w);
  Rng rng(19);
  size_t total_few = 0, total_many = 0;
  std::vector<uint32_t> out;
  for (int t = 0; t < 30; ++t) {
    std::vector<float> q(16);
    for (auto& v : q) v = rng.NextGaussian();
    index_few.Query(q, &out);
    total_few += out.size();
    index_many.Query(q, &out);
    total_many += out.size();
  }
  EXPECT_GT(total_many, total_few);
}

}  // namespace
}  // namespace sampnn
