#include "src/lsh/wta_hash.h"

#include <gtest/gtest.h>

#include "src/lsh/hash_table.h"

namespace sampnn {
namespace {

TEST(WtaHashTest, CreateValidates) {
  Rng rng(1);
  EXPECT_TRUE(WtaHash::Create(0, 2, 8, rng).status().IsInvalidArgument());
  EXPECT_TRUE(WtaHash::Create(16, 0, 8, rng).status().IsInvalidArgument());
  EXPECT_TRUE(WtaHash::Create(16, 2, 3, rng).status().IsInvalidArgument());
  EXPECT_TRUE(WtaHash::Create(16, 2, 512, rng).status().IsInvalidArgument());
  EXPECT_TRUE(WtaHash::Create(4, 2, 8, rng).status().IsInvalidArgument());
  EXPECT_TRUE(WtaHash::Create(16, 11, 8, rng).status().IsInvalidArgument());
  EXPECT_TRUE(WtaHash::Create(16, 2, 8, rng).ok());
}

TEST(WtaHashTest, BitWidthIsSubhashesTimesLogWindow) {
  Rng rng(2);
  auto hash = std::move(WtaHash::Create(32, 3, 8, rng)).value();
  EXPECT_EQ(hash.bits(), 9u);  // 3 * log2(8)
  EXPECT_EQ(hash.num_buckets(), 512u);
}

TEST(WtaHashTest, CodeStaysInRange) {
  Rng rng(3);
  auto hash = std::move(WtaHash::Create(32, 2, 4, rng)).value();
  Rng data_rng(4);
  for (int i = 0; i < 500; ++i) {
    std::vector<float> x(32);
    for (auto& v : x) v = data_rng.NextGaussian();
    EXPECT_LT(hash.Hash(x), hash.num_buckets());
  }
}

TEST(WtaHashTest, DeterministicAndRankInvariant) {
  Rng rng(5);
  auto hash = std::move(WtaHash::Create(16, 4, 4, rng)).value();
  std::vector<float> x(16);
  Rng data_rng(6);
  for (auto& v : x) v = data_rng.NextFloat();
  const uint32_t code = hash.Hash(x);
  EXPECT_EQ(hash.Hash(x), code);
  // WTA is invariant to any strictly monotone transform of the values.
  std::vector<float> scaled(x);
  for (auto& v : scaled) v = 3.0f * v + 7.0f;
  EXPECT_EQ(hash.Hash(scaled), code);
  std::vector<float> squared(x);
  for (auto& v : squared) v = v * v;  // monotone on [0, 1)
  EXPECT_EQ(hash.Hash(squared), code);
}

TEST(WtaHashTest, NearbyVectorsCollideMoreThanRandomPairs) {
  Rng data_rng(7);
  constexpr size_t kDim = 64;
  int near_hits = 0, far_hits = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    Rng hash_rng(100 + t);
    auto hash = std::move(WtaHash::Create(kDim, 2, 8, hash_rng)).value();
    std::vector<float> base(kDim), near(kDim), far(kDim);
    for (size_t i = 0; i < kDim; ++i) {
      base[i] = data_rng.NextGaussian();
      near[i] = base[i] + 0.05f * data_rng.NextGaussian();
      far[i] = data_rng.NextGaussian();
    }
    if (hash.Hash(base) == hash.Hash(near)) ++near_hits;
    if (hash.Hash(base) == hash.Hash(far)) ++far_hits;
  }
  EXPECT_GT(near_hits, far_hits * 2);
}

TEST(LshFamilyTest, ParsesNames) {
  EXPECT_EQ(std::move(LshFamilyFromString("srp")).value(), LshFamily::kSrp);
  EXPECT_EQ(std::move(LshFamilyFromString("wta")).value(), LshFamily::kWta);
  EXPECT_TRUE(LshFamilyFromString("minhash").status().IsInvalidArgument());
  EXPECT_STREQ(LshFamilyToString(LshFamily::kSrp), "srp");
  EXPECT_STREQ(LshFamilyToString(LshFamily::kWta), "wta");
}

TEST(AlshIndexWtaTest, BuildsAndQueriesWithWtaFamily) {
  AlshIndexOptions options;
  options.family = LshFamily::kWta;
  options.bits = 6;       // 2 sub-hashes at window 8
  options.wta_window = 8;
  auto index = std::move(AlshIndex::Create(24, options, 9)).value();
  Rng rng(10);
  Matrix w = Matrix::RandomGaussian(24, 120, rng);
  index.Build(w);
  EXPECT_EQ(index.num_items(), 120u);
  std::vector<float> q(24);
  for (auto& v : q) v = rng.NextGaussian();
  std::vector<uint32_t> out;
  index.Query(q, &out);
  for (uint32_t id : out) EXPECT_LT(id, 120u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(AlshIndexWtaTest, RejectsBitsSmallerThanWindowBits) {
  AlshIndexOptions options;
  options.family = LshFamily::kWta;
  options.bits = 2;
  options.wta_window = 8;  // needs 3 bits per sub-hash
  EXPECT_TRUE(AlshIndex::Create(24, options, 9).status().IsInvalidArgument());
}

TEST(AlshIndexWtaTest, WtaRetrievalBeatsRandomBaseline) {
  // Same qualitative LSH property as SRP: querying with an indexed column
  // should retrieve that column more often than chance.
  AlshIndexOptions options;
  options.family = LshFamily::kWta;
  options.bits = 9;  // 3 sub-hashes of window 8
  auto index = std::move(AlshIndex::Create(32, options, 11)).value();
  Rng rng(12);
  Matrix w = Matrix::RandomGaussian(32, 100, rng);
  index.Build(w);
  size_t hits = 0;
  std::vector<uint32_t> out;
  for (size_t j = 0; j < 100; ++j) {
    std::vector<float> q = w.Col(j);
    index.Query(q, &out);
    for (uint32_t id : out) {
      if (id == j) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GT(hits, 40u);
}

}  // namespace
}  // namespace sampnn
