#include "src/lsh/mips.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

Matrix RandomDb(size_t dim, size_t items, uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomGaussian(dim, items, rng);
}

TEST(ExactMipsTest, FindsTrueMaximum) {
  // Columns: e0, 2*e0, -e0 -> query e0 ranks them 1, 0, 2.
  auto db = std::move(Matrix::FromVector(2, 3, {1, 2, -1, 0, 0, 0})).value();
  std::vector<float> q{1.0f, 0.0f};
  const auto results = ExactMips(db, q, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_FLOAT_EQ(results[0].inner_product, 2.0f);
  EXPECT_EQ(results[1].id, 0u);
  EXPECT_EQ(results[2].id, 2u);
}

TEST(ExactMipsTest, ClampsKToDatabaseSize) {
  Matrix db = RandomDb(4, 5, 1);
  std::vector<float> q(4, 1.0f);
  EXPECT_EQ(ExactMips(db, q, 100).size(), 5u);
}

TEST(ExactMipsTest, SortedDescending) {
  Matrix db = RandomDb(8, 40, 2);
  std::vector<float> q(8, 0.3f);
  const auto results = ExactMips(db, q, 10);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].inner_product, results[i].inner_product);
  }
}

TEST(AlshMipsTest, CreateValidates) {
  Matrix empty;
  AlshIndexOptions options;
  EXPECT_TRUE(AlshMips::Create(empty, options, 1).status().IsInvalidArgument());
}

TEST(AlshMipsTest, QueryReturnsExactInnerProducts) {
  Matrix db = RandomDb(16, 100, 3);
  AlshIndexOptions options;
  options.bits = 4;
  options.tables = 8;
  auto mips = std::move(AlshMips::Create(db, options, 4)).value();
  std::vector<float> q(16);
  Rng rng(5);
  for (auto& v : q) v = rng.NextGaussian();
  const auto results = mips.Query(q, 5);
  for (const auto& r : results) {
    float expected = 0.0f;
    for (size_t i = 0; i < 16; ++i) expected += q[i] * db(i, r.id);
    EXPECT_NEAR(r.inner_product, expected, 1e-4f);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].inner_product, results[i].inner_product);
  }
}

TEST(AlshMipsTest, RecallImprovesWithMoreTables) {
  Matrix db = RandomDb(24, 400, 6);
  Rng rng(7);
  Matrix queries = Matrix::RandomGaussian(30, 24, rng);
  AlshIndexOptions weak;
  weak.bits = 8;
  weak.tables = 1;
  AlshIndexOptions strong;
  strong.bits = 8;
  strong.tables = 20;
  auto mips_weak = std::move(AlshMips::Create(db, weak, 8)).value();
  auto mips_strong = std::move(AlshMips::Create(db, strong, 8)).value();
  const double recall_weak = mips_weak.RecallAtK(queries, 5);
  const double recall_strong = mips_strong.RecallAtK(queries, 5);
  EXPECT_GT(recall_strong, recall_weak);
  EXPECT_GT(recall_strong, 0.3);
}

TEST(AlshMipsTest, RecallIsBetterThanRandomBaseline) {
  Matrix db = RandomDb(16, 500, 9);
  Rng rng(10);
  Matrix queries = Matrix::RandomGaussian(20, 16, rng);
  AlshIndexOptions options;  // paper defaults K=6, L=5
  auto mips = std::move(AlshMips::Create(db, options, 11)).value();
  // Random retrieval of ~b candidates out of 500 would recall ~b/500; the
  // LSH index should far exceed a 10% baseline on top-5.
  EXPECT_GT(mips.RecallAtK(queries, 5), 0.10);
}

TEST(AlshMipsTest, QueryCandidatesAreValidIds) {
  Matrix db = RandomDb(8, 60, 12);
  AlshIndexOptions options;
  auto mips = std::move(AlshMips::Create(db, options, 13)).value();
  std::vector<float> q(8, 0.5f);
  std::vector<uint32_t> candidates;
  mips.QueryCandidates(q, &candidates);
  for (uint32_t id : candidates) EXPECT_LT(id, 60u);
}

}  // namespace
}  // namespace sampnn
