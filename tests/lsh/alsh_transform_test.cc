#include "src/lsh/alsh_transform.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace sampnn {
namespace {

AlshTransform MakeTransform(size_t m = 3, float U = 0.83f) {
  AlshTransformOptions options;
  options.m = m;
  options.U = U;
  return std::move(AlshTransform::Create(options)).value();
}

TEST(AlshTransformTest, CreateValidatesOptions) {
  AlshTransformOptions bad;
  bad.m = 0;
  EXPECT_TRUE(AlshTransform::Create(bad).status().IsInvalidArgument());
  bad.m = 3;
  bad.U = 1.0f;
  EXPECT_TRUE(AlshTransform::Create(bad).status().IsInvalidArgument());
  bad.U = 0.0f;
  EXPECT_TRUE(AlshTransform::Create(bad).status().IsInvalidArgument());
  bad.U = 0.5f;
  EXPECT_TRUE(AlshTransform::Create(bad).ok());
}

TEST(AlshTransformTest, TransformedDimAddsM) {
  AlshTransform t = MakeTransform(4);
  EXPECT_EQ(t.TransformedDim(10), 14u);
}

TEST(AlshTransformTest, DataPaddingIsNormPowers) {
  AlshTransform t = MakeTransform(3);
  t.SetScale(1.0f);  // no scaling: padding is ||w||^2, ||w||^4, ||w||^8
  std::vector<float> w{3.0f, 4.0f};  // ||w|| = 5
  std::vector<float> out(5);
  t.TransformData(w, out);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
  EXPECT_FLOAT_EQ(out[2], 25.0f);
  EXPECT_FLOAT_EQ(out[3], 625.0f);
  EXPECT_FLOAT_EQ(out[4], 390625.0f);
}

TEST(AlshTransformTest, QueryPaddingIsHalves) {
  AlshTransform t = MakeTransform(3);
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> out(5);
  t.TransformQuery(a, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 0.5f);
  EXPECT_FLOAT_EQ(out[3], 0.5f);
  EXPECT_FLOAT_EQ(out[4], 0.5f);
}

TEST(AlshTransformTest, QueryIsUnitNormalized) {
  AlshTransform t = MakeTransform(2);
  std::vector<float> a{3.0f, 4.0f};
  std::vector<float> out(4);
  t.TransformQuery(a, out);
  EXPECT_FLOAT_EQ(out[0], 0.6f);
  EXPECT_FLOAT_EQ(out[1], 0.8f);
}

TEST(AlshTransformTest, ZeroQueryPassesThrough) {
  AlshTransform t = MakeTransform(2);
  std::vector<float> a{0.0f, 0.0f};
  std::vector<float> out(4);
  t.TransformQuery(a, out);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 0.5f);
}

TEST(AlshTransformTest, FitScaleBoundsMaxColumnNorm) {
  AlshTransform t = MakeTransform(3, 0.8f);
  auto w = std::move(Matrix::FromVector(2, 2, {3, 0, 4, 1})).value();
  // Column norms: 5 and 1 -> scale = 0.8 / 5.
  t.FitScaleFromColumns(w);
  EXPECT_FLOAT_EQ(t.scale(), 0.16f);
  std::vector<float> col{3.0f, 4.0f};
  std::vector<float> out(5);
  t.TransformData(col, out);
  const float norm = std::sqrt(out[0] * out[0] + out[1] * out[1]);
  EXPECT_NEAR(norm, 0.8f, 1e-5f);
}

TEST(AlshTransformTest, FitScaleOnZeroMatrixIsOne) {
  AlshTransform t = MakeTransform();
  Matrix w(3, 3);
  t.FitScaleFromColumns(w);
  EXPECT_FLOAT_EQ(t.scale(), 1.0f);
}

// Equation 3 (the core ALSH guarantee): after the P/Q transform, the column
// with maximum inner product has minimum Euclidean distance to the query.
TEST(AlshTransformTest, MipsReducesToNearestNeighbor) {
  Rng rng(42);
  constexpr size_t kDim = 16, kItems = 50;
  Matrix w = Matrix::RandomGaussian(kDim, kItems, rng);
  AlshTransform t = MakeTransform(3);
  t.FitScaleFromColumns(w);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(kDim);
    for (auto& v : q) v = rng.NextGaussian();

    // Exact argmax inner product.
    size_t best_ip = 0;
    float best_ip_val = -1e30f;
    for (size_t j = 0; j < kItems; ++j) {
      float ip = 0.0f;
      for (size_t i = 0; i < kDim; ++i) ip += q[i] * w(i, j);
      if (ip > best_ip_val) {
        best_ip_val = ip;
        best_ip = j;
      }
    }
    // Argmin distance in the transformed space.
    std::vector<float> tq(t.TransformedDim(kDim));
    t.TransformQuery(q, tq);
    size_t best_nn = 0;
    float best_dist = 1e30f;
    std::vector<float> col(kDim), tw(t.TransformedDim(kDim));
    for (size_t j = 0; j < kItems; ++j) {
      for (size_t i = 0; i < kDim; ++i) col[i] = w(i, j);
      t.TransformData(col, tw);
      float dist = 0.0f;
      for (size_t i = 0; i < tw.size(); ++i) {
        const float d = tq[i] - tw[i];
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best_nn = j;
      }
    }
    EXPECT_EQ(best_nn, best_ip) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sampnn
