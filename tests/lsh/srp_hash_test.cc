#include "src/lsh/srp_hash.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(SrpHashTest, CreateValidatesArguments) {
  Rng rng(1);
  EXPECT_TRUE(SrpHash::Create(0, 4, rng).status().IsInvalidArgument());
  EXPECT_TRUE(SrpHash::Create(8, 0, rng).status().IsInvalidArgument());
  EXPECT_TRUE(SrpHash::Create(8, 31, rng).status().IsInvalidArgument());
  EXPECT_TRUE(SrpHash::Create(8, 30, rng).ok());
}

TEST(SrpHashTest, CodeFitsInBits) {
  Rng rng(2);
  auto hash = std::move(SrpHash::Create(16, 5, rng)).value();
  EXPECT_EQ(hash.num_buckets(), 32u);
  Rng data_rng(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> v(16);
    for (auto& x : v) x = data_rng.NextGaussian();
    EXPECT_LT(hash.Hash(v), 32u);
  }
}

TEST(SrpHashTest, DeterministicForSameInput) {
  Rng rng(4);
  auto hash = std::move(SrpHash::Create(8, 6, rng)).value();
  std::vector<float> v{1, -2, 3, -4, 5, -6, 7, -8};
  EXPECT_EQ(hash.Hash(v), hash.Hash(v));
}

TEST(SrpHashTest, ScaleInvariant) {
  // Sign patterns are invariant to positive scaling of the input.
  Rng rng(5);
  auto hash = std::move(SrpHash::Create(8, 10, rng)).value();
  std::vector<float> v{1, -2, 3, -4, 5, -6, 7, -8};
  std::vector<float> scaled(v);
  for (auto& x : scaled) x *= 42.0f;
  EXPECT_EQ(hash.Hash(v), hash.Hash(scaled));
}

TEST(SrpHashTest, OppositeVectorsGetComplementCodes) {
  Rng rng(6);
  auto hash = std::move(SrpHash::Create(8, 12, rng)).value();
  std::vector<float> v{0.3f, -1.2f, 0.8f, 2.0f, -0.1f, 0.5f, -0.9f, 1.1f};
  std::vector<float> neg(v);
  for (auto& x : neg) x = -x;
  const uint32_t mask = (1u << 12) - 1;
  EXPECT_EQ(hash.Hash(v) ^ hash.Hash(neg), mask);
}

TEST(SrpHashTest, NearbyVectorsCollideMoreThanFarOnes) {
  Rng rng(7);
  Rng data_rng(8);
  constexpr size_t kDim = 32;
  int near_collisions = 0, far_collisions = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    Rng hash_rng(1000 + t);
    auto hash = std::move(SrpHash::Create(kDim, 1, hash_rng)).value();
    std::vector<float> base(kDim), near(kDim), far(kDim);
    for (size_t i = 0; i < kDim; ++i) {
      base[i] = data_rng.NextGaussian();
      near[i] = base[i] + 0.1f * data_rng.NextGaussian();
      far[i] = data_rng.NextGaussian();
    }
    if (hash.Hash(base) == hash.Hash(near)) ++near_collisions;
    if (hash.Hash(base) == hash.Hash(far)) ++far_collisions;
  }
  EXPECT_GT(near_collisions, far_collisions);
  EXPECT_GT(near_collisions, kTrials * 0.85);  // ~ 1 - theta/pi, theta small
}

TEST(SrpCollisionProbabilityTest, KnownValues) {
  EXPECT_NEAR(SrpCollisionProbability(1.0), 1.0, 1e-9);
  EXPECT_NEAR(SrpCollisionProbability(-1.0), 0.0, 1e-9);
  EXPECT_NEAR(SrpCollisionProbability(0.0), 0.5, 1e-9);
}

TEST(SrpCollisionProbabilityTest, MonotonicInSimilarity) {
  double prev = 0.0;
  for (double c = -1.0; c <= 1.0; c += 0.1) {
    const double p = SrpCollisionProbability(c);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(SrpCollisionProbabilityTest, ClampsOutOfRangeInput) {
  EXPECT_NEAR(SrpCollisionProbability(1.5), 1.0, 1e-9);
  EXPECT_NEAR(SrpCollisionProbability(-2.0), 0.0, 1e-9);
}

TEST(SrpHashTest, EmpiricalCollisionRateMatchesTheory) {
  // For unit vectors at a known angle, the 1-bit collision rate over many
  // independent hash functions should approach 1 - theta/pi.
  constexpr size_t kDim = 64;
  const double target_cos = 0.7;
  std::vector<float> a(kDim, 0.0f), b(kDim, 0.0f);
  a[0] = 1.0f;
  b[0] = static_cast<float>(target_cos);
  b[1] = static_cast<float>(std::sqrt(1.0 - target_cos * target_cos));
  int collisions = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(t);
    auto hash = std::move(SrpHash::Create(kDim, 1, rng)).value();
    if (hash.Hash(a) == hash.Hash(b)) ++collisions;
  }
  const double expected = SrpCollisionProbability(target_cos);
  EXPECT_NEAR(static_cast<double>(collisions) / kTrials, expected, 0.03);
}

}  // namespace
}  // namespace sampnn
