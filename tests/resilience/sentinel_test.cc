#include "src/resilience/sentinel.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

using Verdict = DivergenceSentinel::Verdict;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

SentinelOptions FastOptions() {
  SentinelOptions options;
  options.enabled = true;
  options.warmup_batches = 3;
  options.spike_factor = 10.0;
  return options;
}

TEST(DivergenceSentinelTest, HealthyLossesPass) {
  DivergenceSentinel sentinel(FastOptions());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sentinel.Observe(2.0, -1.0), Verdict::kOk);
  }
  EXPECT_NEAR(sentinel.ewma(), 2.0, 1e-9);
  EXPECT_EQ(sentinel.observed(), 100u);
}

TEST(DivergenceSentinelTest, NonFiniteLossTripsImmediately) {
  DivergenceSentinel sentinel(FastOptions());
  // NaN/Inf scans are armed from batch 0, before any warmup.
  EXPECT_EQ(sentinel.Observe(kNan, -1.0), Verdict::kNonFiniteLoss);
  EXPECT_EQ(sentinel.Observe(kInf, -1.0), Verdict::kNonFiniteLoss);
  EXPECT_EQ(sentinel.Observe(-kInf, -1.0), Verdict::kNonFiniteLoss);
}

TEST(DivergenceSentinelTest, NonFiniteGradNormTrips) {
  DivergenceSentinel sentinel(FastOptions());
  EXPECT_EQ(sentinel.Observe(1.0, kNan), Verdict::kNonFiniteGrad);
  EXPECT_EQ(sentinel.Observe(1.0, kInf), Verdict::kNonFiniteGrad);
  // Negative = "trainer does not track grad norms": no grad scan.
  EXPECT_EQ(sentinel.Observe(1.0, -1.0), Verdict::kOk);
  EXPECT_EQ(sentinel.Observe(1.0, 123.0), Verdict::kOk);
}

TEST(DivergenceSentinelTest, SpikeTripsOnlyAfterWarmup) {
  DivergenceSentinel sentinel(FastOptions());
  // Within warmup a wild loss passes the spike scan (EWMA not settled).
  EXPECT_EQ(sentinel.Observe(2.0, -1.0), Verdict::kOk);
  EXPECT_EQ(sentinel.Observe(500.0, -1.0), Verdict::kOk);
  EXPECT_EQ(sentinel.Observe(2.0, -1.0), Verdict::kOk);
  // Warmup (3 observations) done; EWMA is near 2-12. A 10x spike trips.
  EXPECT_EQ(sentinel.Observe(1e6, -1.0), Verdict::kLossSpike);
}

TEST(DivergenceSentinelTest, TrippedObservationDoesNotMoveTheEwma) {
  DivergenceSentinel sentinel(FastOptions());
  for (int i = 0; i < 10; ++i) sentinel.Observe(2.0, -1.0);
  const double ewma_before = sentinel.ewma();
  const uint64_t observed_before = sentinel.observed();
  EXPECT_EQ(sentinel.Observe(1e9, -1.0), Verdict::kLossSpike);
  EXPECT_EQ(sentinel.Observe(kNan, -1.0), Verdict::kNonFiniteLoss);
  EXPECT_EQ(sentinel.ewma(), ewma_before);
  EXPECT_EQ(sentinel.observed(), observed_before);
}

TEST(DivergenceSentinelTest, RestoreStateRewindsTheBaseline) {
  DivergenceSentinel a(FastOptions());
  for (int i = 0; i < 20; ++i) a.Observe(3.0, -1.0);

  DivergenceSentinel b(FastOptions());
  b.RestoreState(a.ewma(), a.observed());
  EXPECT_EQ(b.ewma(), a.ewma());
  EXPECT_EQ(b.observed(), a.observed());
  // Identical verdicts from the restored baseline.
  EXPECT_EQ(b.Observe(1e5, -1.0), Verdict::kLossSpike);
  EXPECT_EQ(b.Observe(3.1, -1.0), Verdict::kOk);
}

TEST(DivergenceSentinelTest, VerdictNamesAreDistinct) {
  EXPECT_STRNE(SentinelVerdictToString(Verdict::kOk),
               SentinelVerdictToString(Verdict::kNonFiniteLoss));
  EXPECT_STRNE(SentinelVerdictToString(Verdict::kNonFiniteGrad),
               SentinelVerdictToString(Verdict::kLossSpike));
}

}  // namespace
}  // namespace sampnn
