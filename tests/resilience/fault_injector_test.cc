#include "src/resilience/fault_injector.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

// Every test owns the process-global injector slot.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::ClearGlobal(); }
};

TEST_F(FaultInjectorTest, ParsesEmptySpec) {
  auto injector = FaultInjector::Parse("");
  ASSERT_TRUE(injector.ok());
  EXPECT_EQ(injector->num_armed(), 0u);
}

TEST_F(FaultInjectorTest, ParsesMultiFaultSpec) {
  auto injector = FaultInjector::Parse("grad-nan@120,kill@350");
  ASSERT_TRUE(injector.ok());
  EXPECT_EQ(injector->num_armed(), 2u);
}

TEST_F(FaultInjectorTest, KindWithoutStepMeansStepZero) {
  auto injector = FaultInjector::Parse("halt");
  ASSERT_TRUE(injector.ok());
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kHaltTraining));
}

TEST_F(FaultInjectorTest, RejectsUnknownKindAndBadStep) {
  EXPECT_TRUE(FaultInjector::Parse("explode@3").status().IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("kill@abc").status().IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("kill@").status().IsInvalidArgument());
}

TEST_F(FaultInjectorTest, KindNamesRoundTrip) {
  const FaultKind kinds[] = {
      FaultKind::kGradNan,      FaultKind::kKill,
      FaultKind::kHaltTraining, FaultKind::kCkptTruncate,
      FaultKind::kCkptCorrupt,  FaultKind::kFsyncFail,
      FaultKind::kRenameFail,
  };
  for (FaultKind kind : kinds) {
    auto parsed = FaultKindFromString(FaultKindToString(kind));
    ASSERT_TRUE(parsed.ok()) << FaultKindToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST_F(FaultInjectorTest, FiresOnceAtOrAfterArmedStep) {
  FaultInjector injector =
      std::move(FaultInjector::Parse("grad-nan@3")).value();
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));  // step 0
  injector.AdvanceStep();
  injector.AdvanceStep();
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));  // step 2
  injector.AdvanceStep();
  EXPECT_TRUE(injector.ShouldFire(FaultKind::kGradNan));   // step 3: fires
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));  // exactly once
  injector.AdvanceStep();
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));
}

TEST_F(FaultInjectorTest, FiresWhenFirstQueriedPastTheStep) {
  // Faults polled at coarse cadence (e.g. fsync-fail, only queried at
  // checkpoint writes) still fire on the first query past their step.
  FaultInjector injector =
      std::move(FaultInjector::Parse("fsync-fail@5")).value();
  injector.set_step(40);
  EXPECT_TRUE(injector.ShouldFire(FaultKind::kFsyncFail));
}

TEST_F(FaultInjectorTest, SetStepRealignsAfterResume) {
  FaultInjector injector = std::move(FaultInjector::Parse("kill@10")).value();
  injector.set_step(9);
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kKill));
  injector.set_step(10);
  EXPECT_TRUE(injector.ShouldFire(FaultKind::kKill));
}

TEST_F(FaultInjectorTest, FaultArmedIsFalseWithoutGlobalInjector) {
  FaultInjector::ClearGlobal();
  EXPECT_FALSE(FaultArmed(FaultKind::kGradNan));
}

TEST_F(FaultInjectorTest, FaultArmedUsesTheGlobalInjector) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("ckpt-corrupt@0")).value());
  EXPECT_TRUE(FaultArmed(FaultKind::kCkptCorrupt));
  EXPECT_FALSE(FaultArmed(FaultKind::kCkptCorrupt));  // fired once
  EXPECT_FALSE(FaultArmed(FaultKind::kCkptTruncate));
}

TEST_F(FaultInjectorTest, InstallsFromEnvironment) {
  ::setenv("SAMPNN_FAULTS", "halt@7", 1);
  ASSERT_TRUE(FaultInjector::InstallGlobalFromEnv().ok());
  ::unsetenv("SAMPNN_FAULTS");
  ASSERT_NE(FaultInjector::Global(), nullptr);
  EXPECT_EQ(FaultInjector::Global()->num_armed(), 1u);

  ::setenv("SAMPNN_FAULTS", "not-a-fault", 1);
  EXPECT_TRUE(FaultInjector::InstallGlobalFromEnv().IsInvalidArgument());
  ::unsetenv("SAMPNN_FAULTS");
}

}  // namespace
}  // namespace sampnn
