#include "src/resilience/fault_injector.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

// Every test owns the process-global injector slot.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::ClearGlobal(); }
};

TEST_F(FaultInjectorTest, ParsesEmptySpec) {
  auto injector = FaultInjector::Parse("");
  ASSERT_TRUE(injector.ok());
  EXPECT_EQ(injector->num_armed(), 0u);
}

TEST_F(FaultInjectorTest, ParsesMultiFaultSpec) {
  auto injector = FaultInjector::Parse("grad-nan@120,kill@350");
  ASSERT_TRUE(injector.ok());
  EXPECT_EQ(injector->num_armed(), 2u);
}

TEST_F(FaultInjectorTest, KindWithoutStepMeansStepZero) {
  auto injector = FaultInjector::Parse("halt");
  ASSERT_TRUE(injector.ok());
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kHaltTraining));
}

TEST_F(FaultInjectorTest, RejectsUnknownKindAndBadStep) {
  EXPECT_TRUE(FaultInjector::Parse("explode@3").status().IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("kill@abc").status().IsInvalidArgument());
  EXPECT_TRUE(FaultInjector::Parse("kill@").status().IsInvalidArgument());
}

TEST_F(FaultInjectorTest, KindNamesRoundTrip) {
  const FaultKind kinds[] = {
      FaultKind::kGradNan,      FaultKind::kKill,
      FaultKind::kHaltTraining, FaultKind::kCkptTruncate,
      FaultKind::kCkptCorrupt,  FaultKind::kFsyncFail,
      FaultKind::kRenameFail,   FaultKind::kServeDelay,
      FaultKind::kServeHang,    FaultKind::kRejectAdmission,
      FaultKind::kPromoteCorrupt, FaultKind::kPromoteRegressed,
      FaultKind::kSwapRace,       FaultKind::kDriftSpike,
      FaultKind::kStreamStall,    FaultKind::kCanaryRegress,
  };
  for (FaultKind kind : kinds) {
    auto parsed = FaultKindFromString(FaultKindToString(kind));
    ASSERT_TRUE(parsed.ok()) << FaultKindToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST_F(FaultInjectorTest, FiresOnceAtOrAfterArmedStep) {
  FaultInjector injector =
      std::move(FaultInjector::Parse("grad-nan@3")).value();
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));  // step 0
  injector.AdvanceStep();
  injector.AdvanceStep();
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));  // step 2
  injector.AdvanceStep();
  EXPECT_TRUE(injector.ShouldFire(FaultKind::kGradNan));   // step 3: fires
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));  // exactly once
  injector.AdvanceStep();
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kGradNan));
}

TEST_F(FaultInjectorTest, FiresWhenFirstQueriedPastTheStep) {
  // Faults polled at coarse cadence (e.g. fsync-fail, only queried at
  // checkpoint writes) still fire on the first query past their step.
  FaultInjector injector =
      std::move(FaultInjector::Parse("fsync-fail@5")).value();
  injector.set_step(40);
  EXPECT_TRUE(injector.ShouldFire(FaultKind::kFsyncFail));
}

TEST_F(FaultInjectorTest, SetStepRealignsAfterResume) {
  FaultInjector injector = std::move(FaultInjector::Parse("kill@10")).value();
  injector.set_step(9);
  EXPECT_FALSE(injector.ShouldFire(FaultKind::kKill));
  injector.set_step(10);
  EXPECT_TRUE(injector.ShouldFire(FaultKind::kKill));
}

TEST_F(FaultInjectorTest, FaultArmedIsFalseWithoutGlobalInjector) {
  FaultInjector::ClearGlobal();
  EXPECT_FALSE(FaultArmed(FaultKind::kGradNan));
}

TEST_F(FaultInjectorTest, FaultArmedUsesTheGlobalInjector) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("ckpt-corrupt@0")).value());
  EXPECT_TRUE(FaultArmed(FaultKind::kCkptCorrupt));
  EXPECT_FALSE(FaultArmed(FaultKind::kCkptCorrupt));  // fired once
  EXPECT_FALSE(FaultArmed(FaultKind::kCkptTruncate));
}

TEST_F(FaultInjectorTest, InstallsFromEnvironment) {
  ::setenv("SAMPNN_FAULTS", "halt@7", 1);
  ASSERT_TRUE(FaultInjector::InstallGlobalFromEnv().ok());
  ::unsetenv("SAMPNN_FAULTS");
  ASSERT_NE(FaultInjector::Global(), nullptr);
  EXPECT_EQ(FaultInjector::Global()->num_armed(), 1u);

  ::setenv("SAMPNN_FAULTS", "not-a-fault", 1);
  EXPECT_TRUE(FaultInjector::InstallGlobalFromEnv().IsInvalidArgument());
  ::unsetenv("SAMPNN_FAULTS");
}

TEST_F(FaultInjectorTest, ParsesServingFaultSpec) {
  auto injector = FaultInjector::Parse("delay@20,hang@40,reject-admission@5");
  ASSERT_TRUE(injector.ok());
  EXPECT_EQ(injector->num_armed(), 3u);
  injector->set_step(40);
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kServeDelay));
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kServeHang));
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kRejectAdmission));
  EXPECT_FALSE(injector->ShouldFire(FaultKind::kServeHang));  // fired once
}

TEST_F(FaultInjectorTest, ParsesLifecycleFaultSpec) {
  auto injector =
      FaultInjector::Parse("drift-spike@10,stream-stall@20,canary-regress@30");
  ASSERT_TRUE(injector.ok());
  EXPECT_EQ(injector->num_armed(), 3u);
  injector->set_step(30);
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kDriftSpike));
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kStreamStall));
  EXPECT_TRUE(injector->ShouldFire(FaultKind::kCanaryRegress));
  EXPECT_FALSE(injector->ShouldFire(FaultKind::kDriftSpike));  // fired once
  EXPECT_FALSE(injector->ShouldFire(FaultKind::kStreamStall));
  EXPECT_FALSE(injector->ShouldFire(FaultKind::kCanaryRegress));
}

TEST_F(FaultInjectorTest, DriftSpikeFiresExactlyOnceAcrossThreads) {
  // The lifecycle loop and the serving layer may both consult the global
  // injector; each lifecycle fault must fire exactly once total.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  FaultInjector injector =
      std::move(FaultInjector::Parse("drift-spike@50")).value();
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        injector.AdvanceStep();
        if (injector.ShouldFire(FaultKind::kDriftSpike)) fires.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fires.load(), 1);
}

TEST_F(FaultInjectorTest, StreamStallFiresExactlyOnceAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  FaultInjector injector =
      std::move(FaultInjector::Parse("stream-stall@50")).value();
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        injector.AdvanceStep();
        if (injector.ShouldFire(FaultKind::kStreamStall)) fires.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fires.load(), 1);
}

TEST_F(FaultInjectorTest, CanaryRegressFiresExactlyOnceAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  FaultInjector injector =
      std::move(FaultInjector::Parse("canary-regress@50")).value();
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        injector.AdvanceStep();
        if (injector.ShouldFire(FaultKind::kCanaryRegress)) fires.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fires.load(), 1);
}

TEST_F(FaultInjectorTest, ConcurrentQueriesSeeExactlyOneFirePerFault) {
  // The serving layer queries and advances the injector from submitter and
  // worker threads; each armed fault must fire exactly once total.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  FaultInjector injector =
      std::move(FaultInjector::Parse("hang@50,delay@50")).value();
  std::atomic<int> hang_fires{0}, delay_fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        injector.AdvanceStep();
        if (injector.ShouldFire(FaultKind::kServeHang)) {
          hang_fires.fetch_add(1);
        }
        if (injector.ShouldFire(FaultKind::kServeDelay)) {
          delay_fires.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hang_fires.load(), 1);
  EXPECT_EQ(delay_fires.load(), 1);
}

}  // namespace
}  // namespace sampnn
