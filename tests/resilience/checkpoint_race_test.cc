// Regression test for the checkpoint-directory sharing race (DESIGN.md §14):
// the lifecycle loop writes checkpoints (with retain-K pruning) into the
// same directory ModelRegistry::PromoteFromDir scans. Without the advisory
// .ckpt.lock, LatestValidCheckpoint could list a file and then find it
// deleted by a concurrent Prune() before reading it — surfacing as a
// spurious NotFound (every listed file "vanished") even though the
// directory continuously holds valid checkpoints. These tests hammer the
// scan-vs-retain interleaving from dedicated threads; run under ASan in CI.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/resilience/checkpoint.h"

namespace sampnn {
namespace {

std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sampnn_ckpt_race_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Payload derived from the step, so a scanner can verify it read a
// complete, untorn frame for whatever step it landed on.
std::string PayloadFor(uint64_t step) {
  return "step-" + std::to_string(step) + "-" + std::string(512, 'x');
}

TEST(CheckpointRaceTest, ScannerNeverLosesToConcurrentRetention) {
  const std::string dir = ScratchDir("scan_vs_retain");
  // retain=2 keeps the pruner constantly deleting right behind the scan
  // window: every Write() after the second removes the oldest file.
  auto writer =
      std::move(CheckpointWriter::Create({dir, /*retain=*/2}))
          .ValueOrDie("writer");
  ASSERT_TRUE(writer.Write(1, PayloadFor(1)).ok());

  // A free-running scanner holds the shared lock nearly continuously and
  // starves the writer's exclusive Prune() for minutes (flock has no
  // fairness guarantee), so the scanner pauses between scans — plenty to
  // interleave with deletions, bounded enough for CI.
  std::atomic<bool> stop{false};
  std::atomic<int> not_found{0};
  std::atomic<int> torn{0};
  std::atomic<int> scans{0};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto loaded = LatestValidCheckpoint(dir);
      scans.fetch_add(1, std::memory_order_relaxed);
      if (!loaded.ok()) {
        // After step 1 lands, the directory always holds at least one
        // valid checkpoint; NotFound means the scan raced a deletion.
        not_found.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (loaded->payload != PayloadFor(loaded->step)) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (uint64_t step = 2; step <= 120; ++step) {
    ASSERT_TRUE(writer.Write(step, PayloadFor(step)).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  scanner.join();

  EXPECT_EQ(not_found.load(), 0)
      << "LatestValidCheckpoint observed a retain-K deletion mid-scan";
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(scans.load(), 0);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRaceTest, LockFileIsInvisibleToCheckpointScans) {
  // The advisory lock file lives inside the checkpoint directory; it must
  // never be mistaken for (or corrupt the ordering of) checkpoint frames.
  const std::string dir = ScratchDir("lock_invisible");
  auto writer =
      std::move(CheckpointWriter::Create({dir, /*retain=*/2}))
          .ValueOrDie("writer");
  ASSERT_TRUE(writer.Write(7, PayloadFor(7)).ok());
  // Both Prune (exclusive) and the scan (shared) have taken the lock by
  // now, so .ckpt.lock exists on disk.
  auto loaded = LatestValidCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->step, 7u);
  EXPECT_EQ(ListCheckpointSteps(dir), std::vector<uint64_t>{7});
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRaceTest, MissingDirectoryStillReportsNotFound) {
  // The lock acquisition must degrade gracefully when the directory does
  // not exist: same NotFound contract as before the lock was introduced.
  const std::string dir = ScratchDir("never_created");
  EXPECT_TRUE(LatestValidCheckpoint(dir).status().IsNotFound());
}

}  // namespace
}  // namespace sampnn
