#include "src/resilience/checkpoint.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/resilience/fault_injector.h"

namespace fs = std::filesystem;

namespace sampnn {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("ckpt_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::ClearGlobal();
    fs::remove_all(dir_);
  }

  CheckpointWriter MakeWriter(size_t retain = 3) {
    CheckpointWriterOptions options;
    options.dir = dir_;
    options.retain = retain;
    return std::move(CheckpointWriter::Create(options)).value();
  }

  std::string PathFor(uint64_t step) const {
    return (fs::path(dir_) / CheckpointFileName(step)).string();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, CreateRejectsEmptyDir) {
  EXPECT_TRUE(CheckpointWriter::Create(CheckpointWriterOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CheckpointTest, WriteReadRoundTrip) {
  CheckpointWriter writer = MakeWriter();
  const std::string payload = "model+optimizer+rng state \x00\x01\x02 blob";
  ASSERT_TRUE(writer.Write(42, payload).ok());
  auto read = ReadCheckpointPayload(PathFor(42));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(PathFor(42) + ".tmp"));
}

TEST_F(CheckpointTest, EmptyPayloadRoundTrips) {
  CheckpointWriter writer = MakeWriter();
  ASSERT_TRUE(writer.Write(1, "").ok());
  auto read = ReadCheckpointPayload(PathFor(1));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_F(CheckpointTest, RetentionKeepsNewestK) {
  CheckpointWriter writer = MakeWriter(/*retain=*/2);
  for (uint64_t step : {10, 20, 30, 40}) {
    ASSERT_TRUE(writer.Write(step, "payload").ok());
  }
  EXPECT_EQ(ListCheckpointSteps(dir_), (std::vector<uint64_t>{30, 40}));
}

TEST_F(CheckpointTest, RetainZeroKeepsAll) {
  CheckpointWriter writer = MakeWriter(/*retain=*/0);
  for (uint64_t step : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(writer.Write(step, "payload").ok());
  }
  EXPECT_EQ(ListCheckpointSteps(dir_).size(), 5u);
}

TEST_F(CheckpointTest, RejectsMissingAndTinyFiles) {
  EXPECT_TRUE(ReadCheckpointPayload(PathFor(7)).status().IsIOError());
  fs::create_directories(dir_);
  std::ofstream(PathFor(7), std::ios::binary) << "short";
  EXPECT_TRUE(ReadCheckpointPayload(PathFor(7)).status().IsInvalidArgument());
}

TEST_F(CheckpointTest, RejectsBadMagic) {
  CheckpointWriter writer = MakeWriter();
  ASSERT_TRUE(writer.Write(7, "payload").ok());
  {
    std::fstream f(PathFor(7), std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');  // clobber the first magic byte
  }
  EXPECT_TRUE(ReadCheckpointPayload(PathFor(7)).status().IsInvalidArgument());
}

TEST_F(CheckpointTest, RejectsFlippedPayloadByte) {
  CheckpointWriter writer = MakeWriter();
  ASSERT_TRUE(writer.Write(7, "a perfectly healthy payload").ok());
  {
    std::fstream f(PathFor(7), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('!');
  }
  EXPECT_TRUE(ReadCheckpointPayload(PathFor(7)).status().IsInvalidArgument());
}

TEST_F(CheckpointTest, InjectedCorruptionIsSilentOnWriteCaughtOnRead) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("ckpt-corrupt@0")).value());
  CheckpointWriter writer = MakeWriter();
  // A torn/bit-rotted write still "succeeds" — that is the point.
  ASSERT_TRUE(writer.Write(5, "payload bytes that will rot").ok());
  EXPECT_TRUE(ReadCheckpointPayload(PathFor(5)).status().IsInvalidArgument());
}

TEST_F(CheckpointTest, InjectedTruncationIsSilentOnWriteCaughtOnRead) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("ckpt-truncate@0")).value());
  CheckpointWriter writer = MakeWriter();
  ASSERT_TRUE(writer.Write(5, "payload bytes that will tear").ok());
  EXPECT_TRUE(ReadCheckpointPayload(PathFor(5)).status().IsInvalidArgument());
}

TEST_F(CheckpointTest, InjectedFsyncFailureSurfacesAsIOError) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("fsync-fail@0")).value());
  CheckpointWriter writer = MakeWriter();
  EXPECT_TRUE(writer.Write(5, "payload").IsIOError());
  EXPECT_FALSE(fs::exists(PathFor(5)));
  EXPECT_FALSE(fs::exists(PathFor(5) + ".tmp"));  // temp cleaned up
}

TEST_F(CheckpointTest, InjectedRenameFailureSurfacesAsIOError) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("rename-fail@0")).value());
  CheckpointWriter writer = MakeWriter();
  EXPECT_TRUE(writer.Write(5, "payload").IsIOError());
  EXPECT_FALSE(fs::exists(PathFor(5)));
  EXPECT_FALSE(fs::exists(PathFor(5) + ".tmp"));
}

TEST_F(CheckpointTest, LatestValidSkipsCorruptNewest) {
  CheckpointWriter writer = MakeWriter();
  ASSERT_TRUE(writer.Write(10, "older good payload").ok());
  ASSERT_TRUE(writer.Write(20, "newer payload, about to rot").ok());
  {
    std::fstream f(PathFor(20),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(18);
    f.put('?');
  }
  auto latest = LatestValidCheckpoint(dir_);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 10u);
  EXPECT_EQ(latest->payload, "older good payload");
}

TEST_F(CheckpointTest, LatestValidIsNotFoundWhenNothingValidates) {
  EXPECT_TRUE(LatestValidCheckpoint(dir_).status().IsNotFound());  // no dir
  CheckpointWriter writer = MakeWriter();
  EXPECT_TRUE(LatestValidCheckpoint(dir_).status().IsNotFound());  // empty
  ASSERT_TRUE(writer.Write(3, "doomed").ok());
  {
    std::fstream f(PathFor(3), std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  EXPECT_TRUE(LatestValidCheckpoint(dir_).status().IsNotFound());
}

TEST_F(CheckpointTest, FileNamesSortLexicographicallyByStep) {
  EXPECT_LT(CheckpointFileName(9), CheckpointFileName(10));
  EXPECT_LT(CheckpointFileName(99), CheckpointFileName(100));
}

}  // namespace
}  // namespace sampnn
