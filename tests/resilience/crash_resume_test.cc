// End-to-end resilience: RunExperiment with checkpointing, an injected
// mid-run halt (the in-process stand-in for SIGKILL), resume from the
// latest checkpoint, and a bitwise comparison of the per-epoch trajectory
// against the uninterrupted same-seed run — for all five trainers. Plus the
// divergence-sentinel recovery paths: NaN-gradient injection rolls back and
// the run still finishes with finite losses, and exhausted retries surface
// as an error Status.

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault_injector.h"
#include "tests/core/test_util.h"

namespace fs = std::filesystem;

namespace sampnn {
namespace {

using testing_util::EasyDataset;
using testing_util::EasyNet;

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("crash_resume_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::ClearGlobal();
    fs::remove_all(dir_);
  }

  static DatasetSplits Splits() {
    Dataset all = EasyDataset(480);
    Rng rng(3);
    return std::move(SplitDataset(all, 320, 96, 64, rng)).value();
  }

  // 320 train examples / batch 16 = 20 batches per epoch.
  static ExperimentConfig BaseConfig(TrainerKind kind) {
    ExperimentConfig config;
    config.trainer = PaperTrainerOptions(kind, 16, 42);
    config.trainer.alsh.threads = 1;  // bitwise resume needs determinism
    config.batch_size = 16;
    config.epochs = 3;
    return config;
  }

  static void ExpectBitwiseEqual(const ExperimentResult& a,
                                 const ExperimentResult& b) {
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (size_t i = 0; i < a.epochs.size(); ++i) {
      EXPECT_EQ(a.epochs[i].epoch, b.epochs[i].epoch);
      EXPECT_EQ(a.epochs[i].train_loss, b.epochs[i].train_loss)
          << "epoch " << i + 1;
      EXPECT_EQ(a.epochs[i].test_accuracy, b.epochs[i].test_accuracy)
          << "epoch " << i + 1;
      EXPECT_EQ(a.epochs[i].validation_accuracy,
                b.epochs[i].validation_accuracy)
          << "epoch " << i + 1;
    }
    EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
  }

  std::string dir_;
};

class CrashResumeAllTrainersTest
    : public CrashResumeTest,
      public ::testing::WithParamInterface<TrainerKind> {};

TEST_P(CrashResumeAllTrainersTest, HaltAndResumeReproducesBitwise) {
  const DatasetSplits data = Splits();
  const MlpConfig net = EasyNet(data.train);

  // Reference: same seeds, no faults, no checkpointing.
  const ExperimentResult reference =
      std::move(RunExperiment(net, BaseConfig(GetParam()), data)).value();

  // Interrupted: checkpoint every 7 batches, halt mid-epoch-2 at step 33.
  ExperimentConfig config = BaseConfig(GetParam());
  config.resilience.checkpoint_dir = dir_;
  config.resilience.checkpoint_every = 7;
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("halt@33")).value());
  auto halted = RunExperiment(net, config, data);
  FaultInjector::ClearGlobal();
  ASSERT_TRUE(halted.status().IsInternal()) << halted.status().ToString();
  ASSERT_FALSE(ListCheckpointSteps(dir_).empty());

  // Resumed: picks up from the newest checkpoint and must land exactly on
  // the uninterrupted trajectory.
  config.resilience.resume = true;
  const ExperimentResult resumed =
      std::move(RunExperiment(net, config, data)).value();
  ExpectBitwiseEqual(reference, resumed);
}

INSTANTIATE_TEST_SUITE_P(
    AllTrainers, CrashResumeAllTrainersTest,
    ::testing::Values(TrainerKind::kStandard, TrainerKind::kDropout,
                      TrainerKind::kAdaptiveDropout, TrainerKind::kAlsh,
                      TrainerKind::kMc),
    [](const ::testing::TestParamInfo<TrainerKind>& info) {
      std::string name = TrainerKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(CrashResumeTest, ResumeWithEmptyDirStartsFreshAndMatches) {
  const DatasetSplits data = Splits();
  const MlpConfig net = EasyNet(data.train);
  const ExperimentResult reference =
      std::move(RunExperiment(net, BaseConfig(TrainerKind::kStandard), data))
          .value();

  ExperimentConfig config = BaseConfig(TrainerKind::kStandard);
  config.resilience.checkpoint_dir = dir_;
  config.resilience.resume = true;  // nothing to resume from: fresh start
  const ExperimentResult fresh =
      std::move(RunExperiment(net, config, data)).value();
  ExpectBitwiseEqual(reference, fresh);
}

TEST_F(CrashResumeTest, ResumeSkipsCorruptNewestCheckpoint) {
  const DatasetSplits data = Splits();
  const MlpConfig net = EasyNet(data.train);
  const ExperimentResult reference =
      std::move(RunExperiment(net, BaseConfig(TrainerKind::kStandard), data))
          .value();

  ExperimentConfig config = BaseConfig(TrainerKind::kStandard);
  config.resilience.checkpoint_dir = dir_;
  config.resilience.checkpoint_every = 5;
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("halt@27")).value());
  auto halted = RunExperiment(net, config, data);
  FaultInjector::ClearGlobal();
  ASSERT_TRUE(halted.status().IsInternal());

  // Flip one byte in the newest checkpoint: resume must fall back to the
  // next-older valid one and still reproduce the reference bitwise.
  std::vector<uint64_t> steps = ListCheckpointSteps(dir_);
  ASSERT_GE(steps.size(), 2u);
  const std::string newest =
      (fs::path(dir_) / CheckpointFileName(steps.back())).string();
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    f.put('~');
  }
  ASSERT_TRUE(ReadCheckpointPayload(newest).status().IsInvalidArgument());

  config.resilience.resume = true;
  const ExperimentResult resumed =
      std::move(RunExperiment(net, config, data)).value();
  ExpectBitwiseEqual(reference, resumed);
}

TEST_F(CrashResumeTest, ResumeWithoutCheckpointDirIsInvalid) {
  const DatasetSplits data = Splits();
  const MlpConfig net = EasyNet(data.train);
  ExperimentConfig config = BaseConfig(TrainerKind::kStandard);
  config.resilience.resume = true;
  EXPECT_TRUE(RunExperiment(net, config, data).status().IsInvalidArgument());
}

TEST_F(CrashResumeTest, NanGradientRollsBackAndRunStaysFinite) {
  const DatasetSplits data = Splits();
  const MlpConfig net = EasyNet(data.train);

  // Without the sentinel an injected NaN gradient poisons the weights and
  // the epoch-mean loss goes NaN — the failure mode we are defending
  // against.
  {
    ExperimentConfig config = BaseConfig(TrainerKind::kStandard);
    FaultInjector::InstallGlobal(
        std::move(FaultInjector::Parse("grad-nan@25")).value());
    const ExperimentResult poisoned =
        std::move(RunExperiment(net, config, data)).value();
    FaultInjector::ClearGlobal();
    EXPECT_TRUE(std::isnan(poisoned.epochs.back().train_loss));
  }

  // With the sentinel the poisoned batch is detected, rolled back past, and
  // every recorded loss stays finite while the run still learns.
  {
    ExperimentConfig config = BaseConfig(TrainerKind::kStandard);
    config.resilience.sentinel.enabled = true;
    FaultInjector::InstallGlobal(
        std::move(FaultInjector::Parse("grad-nan@25")).value());
    const ExperimentResult recovered =
        std::move(RunExperiment(net, config, data)).value();
    FaultInjector::ClearGlobal();
    for (const EpochRecord& r : recovered.epochs) {
      EXPECT_TRUE(std::isfinite(r.train_loss)) << "epoch " << r.epoch;
    }
    EXPECT_LT(recovered.epochs.back().train_loss,
              recovered.epochs.front().train_loss);
    EXPECT_GT(recovered.final_test_accuracy, 0.5);
  }
}

TEST_F(CrashResumeTest, ExhaustedRetriesSurfaceAsError) {
  const DatasetSplits data = Splits();
  const MlpConfig net = EasyNet(data.train);
  ExperimentConfig config = BaseConfig(TrainerKind::kStandard);
  config.resilience.sentinel.enabled = true;
  config.resilience.sentinel.max_retries = 2;
  // Four armed NaN faults at the same step: every retry re-poisons the
  // same batch, so the run can never get past it.
  FaultInjector::InstallGlobal(
      std::move(
          FaultInjector::Parse("grad-nan@5,grad-nan@5,grad-nan@5,grad-nan@5"))
          .value());
  auto result = RunExperiment(net, config, data);
  FaultInjector::ClearGlobal();
  ASSERT_TRUE(result.status().IsInternal()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("diverged"), std::string::npos);
}

}  // namespace
}  // namespace sampnn
