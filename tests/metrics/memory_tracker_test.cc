#include "src/metrics/memory_tracker.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

Mlp TestNet() {
  MlpConfig cfg = MlpConfig::Uniform(784, 10, 3, 100);
  return std::move(Mlp::Create(cfg)).value();
}

TEST(ReadMemoryUsageTest, WorksOnProcfs) {
  auto usage = ReadMemoryUsage();
  ASSERT_TRUE(usage.ok());
  EXPECT_GT(usage->rss_bytes, 0u);
  EXPECT_GE(usage->peak_rss_bytes, usage->rss_bytes);
}

TEST(MemoryTrackerTest, DetectsLargeAllocation) {
  MemoryTracker tracker;
  // Touch 64 MB so it is actually resident.
  std::vector<char> big(64 << 20);
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = 1;
  EXPECT_GT(tracker.GrowthBytes(), 32u << 20);
  EXPECT_GT(tracker.CurrentBytes(), 0u);
}

TEST(MemoryTrackerTest, PeakIsMonotoneAndAtLeastCurrent) {
  MemoryTracker tracker;
  // Read current before peak: RSS may grow between the two procfs reads,
  // but the high-water mark can only ratchet up, so this order is safe.
  const size_t current = tracker.CurrentBytes();
  const size_t peak_before = tracker.PeakBytes();
  ASSERT_GT(peak_before, 0u);
  EXPECT_GE(peak_before, current);
  // Touch enough memory to push RSS at least ~48 MB past the old high-water
  // mark (sized against the old peak, not a constant: an earlier test in the
  // same process may already have raised VmHWM well above current RSS). The
  // mark must ratchet up and never read lower afterwards, even once the
  // buffer is freed.
  const size_t touch =
      peak_before - std::min(current, peak_before) + (48u << 20);
  {
    std::vector<char> big(touch);
    for (size_t i = 0; i < big.size(); i += 4096) big[i] = 1;
    EXPECT_GE(tracker.PeakBytes(), peak_before + (32u << 20));
  }
  EXPECT_GE(tracker.PeakBytes(), peak_before + (32u << 20));
}

TEST(MemoryTrackerTest, ResetRebaselinesGrowth) {
  MemoryTracker tracker;
  // Keep the allocation alive across Reset(), so current RSS cannot shrink
  // below the re-captured baseline (avoids allocator-release flakiness).
  std::vector<char> big(64 << 20);
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = 1;
  EXPECT_GT(tracker.GrowthBytes(), 32u << 20);
  const size_t baseline_before = tracker.baseline_bytes();
  tracker.Reset();
  EXPECT_GT(tracker.baseline_bytes(), baseline_before);
  // Growth restarts near zero: far below the still-resident 64 MB.
  EXPECT_LT(tracker.GrowthBytes(), 32u << 20);
}

TEST(WorkingSetTest, ValidatesArguments) {
  Mlp net = TestNet();
  EXPECT_TRUE(
      EstimateWorkingSet(net, "standard", 0, 0.05).status().IsInvalidArgument());
  EXPECT_TRUE(
      EstimateWorkingSet(net, "standard", 1, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      EstimateWorkingSet(net, "standard", 1, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      EstimateWorkingSet(net, "svm", 1, 0.5).status().IsInvalidArgument());
}

TEST(WorkingSetTest, AllMethodsProduceNonzeroTotals) {
  Mlp net = TestNet();
  for (const char* method :
       {"standard", "dropout", "adaptive-dropout", "alsh", "mc"}) {
    auto ws = EstimateWorkingSet(net, method, 20, 0.1);
    ASSERT_TRUE(ws.ok()) << method;
    EXPECT_GT(ws->total(), 0u) << method;
  }
}

TEST(WorkingSetTest, SparseMethodsTouchFewerWeightBytesThanStandard) {
  Mlp net = TestNet();
  auto standard = std::move(EstimateWorkingSet(net, "standard", 1, 1.0)).value();
  auto alsh = std::move(EstimateWorkingSet(net, "alsh", 1, 0.05)).value();
  auto mc = std::move(EstimateWorkingSet(net, "mc", 20, 0.1)).value();
  EXPECT_LT(alsh.weights_touched, standard.weights_touched);
  EXPECT_LT(mc.weights_touched, standard.weights_touched);
}

TEST(WorkingSetTest, McTouchesFewerBytesThanDropoutPair) {
  // The §9.4 ordering: the dropout pair's full-width masks and dense
  // activations cost more traffic than MC's sampled backward.
  Mlp net = TestNet();
  auto mc = std::move(EstimateWorkingSet(net, "mc", 20, 0.1)).value();
  auto dropout = std::move(EstimateWorkingSet(net, "dropout", 20, 0.05)).value();
  auto adaptive =
      std::move(EstimateWorkingSet(net, "adaptive-dropout", 20, 0.05)).value();
  EXPECT_LT(mc.total(), dropout.total());
  EXPECT_LT(dropout.total(), adaptive.total());
}

TEST(FormatBytesTest, HumanReadable) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.0 MB");
  EXPECT_EQ(FormatBytes(size_t{5} << 30), "5.0 GB");
}

}  // namespace
}  // namespace sampnn
