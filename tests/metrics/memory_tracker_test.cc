#include "src/metrics/memory_tracker.h"

#include <gtest/gtest.h>

namespace sampnn {
namespace {

Mlp TestNet() {
  MlpConfig cfg = MlpConfig::Uniform(784, 10, 3, 100);
  return std::move(Mlp::Create(cfg)).value();
}

TEST(ReadMemoryUsageTest, WorksOnProcfs) {
  auto usage = ReadMemoryUsage();
  ASSERT_TRUE(usage.ok());
  EXPECT_GT(usage->rss_bytes, 0u);
  EXPECT_GE(usage->peak_rss_bytes, usage->rss_bytes);
}

TEST(MemoryTrackerTest, DetectsLargeAllocation) {
  MemoryTracker tracker;
  // Touch 64 MB so it is actually resident.
  std::vector<char> big(64 << 20);
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = 1;
  EXPECT_GT(tracker.GrowthBytes(), 32u << 20);
  EXPECT_GT(tracker.CurrentBytes(), 0u);
}

TEST(WorkingSetTest, ValidatesArguments) {
  Mlp net = TestNet();
  EXPECT_TRUE(
      EstimateWorkingSet(net, "standard", 0, 0.05).status().IsInvalidArgument());
  EXPECT_TRUE(
      EstimateWorkingSet(net, "standard", 1, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      EstimateWorkingSet(net, "standard", 1, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      EstimateWorkingSet(net, "svm", 1, 0.5).status().IsInvalidArgument());
}

TEST(WorkingSetTest, AllMethodsProduceNonzeroTotals) {
  Mlp net = TestNet();
  for (const char* method :
       {"standard", "dropout", "adaptive-dropout", "alsh", "mc"}) {
    auto ws = EstimateWorkingSet(net, method, 20, 0.1);
    ASSERT_TRUE(ws.ok()) << method;
    EXPECT_GT(ws->total(), 0u) << method;
  }
}

TEST(WorkingSetTest, SparseMethodsTouchFewerWeightBytesThanStandard) {
  Mlp net = TestNet();
  auto standard = std::move(EstimateWorkingSet(net, "standard", 1, 1.0)).value();
  auto alsh = std::move(EstimateWorkingSet(net, "alsh", 1, 0.05)).value();
  auto mc = std::move(EstimateWorkingSet(net, "mc", 20, 0.1)).value();
  EXPECT_LT(alsh.weights_touched, standard.weights_touched);
  EXPECT_LT(mc.weights_touched, standard.weights_touched);
}

TEST(WorkingSetTest, McTouchesFewerBytesThanDropoutPair) {
  // The §9.4 ordering: the dropout pair's full-width masks and dense
  // activations cost more traffic than MC's sampled backward.
  Mlp net = TestNet();
  auto mc = std::move(EstimateWorkingSet(net, "mc", 20, 0.1)).value();
  auto dropout = std::move(EstimateWorkingSet(net, "dropout", 20, 0.05)).value();
  auto adaptive =
      std::move(EstimateWorkingSet(net, "adaptive-dropout", 20, 0.05)).value();
  EXPECT_LT(mc.total(), dropout.total());
  EXPECT_LT(dropout.total(), adaptive.total());
}

TEST(FormatBytesTest, HumanReadable) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 << 20), "3.0 MB");
  EXPECT_EQ(FormatBytes(size_t{5} << 30), "5.0 GB");
}

}  // namespace
}  // namespace sampnn
