#include "src/metrics/reporter.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(TableReporterTest, RenderContainsTitleHeaderAndRows) {
  TableReporter table("Table X: demo", {"method", "accuracy"});
  table.AddRow({"standard", "96.46"});
  table.AddRow({"mc", "98.10"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("Table X: demo"), std::string::npos);
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("standard"), std::string::npos);
  EXPECT_NE(out.find("98.10"), std::string::npos);
}

TEST(TableReporterTest, ColumnsAreAligned) {
  TableReporter table("t", {"a", "long-header"});
  table.AddRow({"xxxxxxxx", "1"});
  const std::string out = table.Render();
  // Find the header and the data row; the second column must start at the
  // same offset in both lines.
  std::istringstream is(out);
  std::string line, header_line, data_line;
  while (std::getline(is, line)) {
    if (line.find("long-header") != std::string::npos) header_line = line;
    if (line.find("xxxxxxxx") != std::string::npos) data_line = line;
  }
  ASSERT_FALSE(header_line.empty());
  ASSERT_FALSE(data_line.empty());
  EXPECT_EQ(header_line.find("long-header"), data_line.find("1"));
}

TEST(TableReporterTest, CellFormatsNumbers) {
  EXPECT_EQ(TableReporter::Cell(3.14159), "3.14");
  EXPECT_EQ(TableReporter::Cell(3.14159, 4), "3.1416");
  EXPECT_EQ(TableReporter::Cell(100.0, 0), "100");
}

TEST(TableReporterTest, WriteCsvRoundTrips) {
  const std::string path = ::testing::TempDir() + "/reporter_test.csv";
  TableReporter table("t", {"a", "b"});
  table.AddRow({"1", "2"});
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(TableReporterTest, WriteCsvEscapesSpecialCharacters) {
  // WriteCsv routes through the util CSV writer, so cells containing commas,
  // quotes, or newlines must come out quoted with doubled inner quotes.
  const std::string path = ::testing::TempDir() + "/reporter_escape_test.csv";
  TableReporter table("t", {"method", "note"});
  table.AddRow({"alsh", "K=6, L=5"});
  table.AddRow({"mc", "says \"sampled\"\nline2"});
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(),
            "method,note\n"
            "alsh,\"K=6, L=5\"\n"
            "mc,\"says \"\"sampled\"\"\nline2\"\n");
  std::remove(path.c_str());
}

TEST(TableReporterTest, RowsAccessor) {
  TableReporter table("t", {"a"});
  table.AddRow({"x"});
  ASSERT_EQ(table.rows().size(), 1u);
  EXPECT_EQ(table.rows()[0][0], "x");
}

}  // namespace
}  // namespace sampnn
