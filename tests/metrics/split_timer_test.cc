#include "src/metrics/split_timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(SplitTimerTest, StartsEmpty) {
  SplitTimer timer;
  EXPECT_EQ(timer.Seconds(kPhaseForward), 0.0);
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
  EXPECT_TRUE(timer.totals().empty());
}

TEST(SplitTimerTest, AddAccumulates) {
  SplitTimer timer;
  timer.Add(kPhaseForward, 1.5);
  timer.Add(kPhaseForward, 0.5);
  timer.Add(kPhaseBackward, 2.0);
  EXPECT_DOUBLE_EQ(timer.Seconds(kPhaseForward), 2.0);
  EXPECT_DOUBLE_EQ(timer.Seconds(kPhaseBackward), 2.0);
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 4.0);
}

TEST(SplitTimerTest, ScopeChargesElapsedTime) {
  SplitTimer timer;
  {
    SplitTimer::Scope scope(&timer, "work");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(timer.Seconds("work"), 0.015);
  EXPECT_LT(timer.Seconds("work"), 5.0);
}

TEST(SplitTimerTest, NullTimerScopeIsSafe) {
  SplitTimer::Scope scope(nullptr, "ignored");
  EXPECT_GE(scope.Elapsed(), 0.0);
}

TEST(SplitTimerTest, ResetClears) {
  SplitTimer timer;
  timer.Add("a", 1.0);
  timer.Reset();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

TEST(SplitTimerTest, MergeSumsPhases) {
  SplitTimer a, b;
  a.Add(kPhaseForward, 1.0);
  a.Add(kPhaseSampling, 0.5);
  b.Add(kPhaseForward, 2.0);
  b.Add(kPhaseHashRebuild, 3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Seconds(kPhaseForward), 3.0);
  EXPECT_DOUBLE_EQ(a.Seconds(kPhaseSampling), 0.5);
  EXPECT_DOUBLE_EQ(a.Seconds(kPhaseHashRebuild), 3.0);
  // b unchanged.
  EXPECT_DOUBLE_EQ(b.Seconds(kPhaseForward), 2.0);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const double t1 = watch.Elapsed();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t2 = watch.Elapsed();
  EXPECT_GE(t1, 0.0);
  EXPECT_GT(t2, t1);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.Restart();
  EXPECT_LT(watch.Elapsed(), 0.01);
}

}  // namespace
}  // namespace sampnn
