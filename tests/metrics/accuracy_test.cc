#include "src/metrics/accuracy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"

namespace sampnn {
namespace {

TEST(AccuracyTest, BasicFraction) {
  std::vector<int32_t> preds{0, 1, 2, 3};
  std::vector<int32_t> labels{0, 1, 0, 3};
  auto acc = Accuracy(preds, labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(acc.value(), 0.75);
}

TEST(AccuracyTest, EmptyIsZero) {
  std::vector<int32_t> empty;
  auto acc = Accuracy(empty, empty);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc.value(), 0.0);
}

TEST(AccuracyTest, SizeMismatchIsError) {
  std::vector<int32_t> a{0, 1};
  std::vector<int32_t> b{0};
  EXPECT_TRUE(Accuracy(a, b).status().IsInvalidArgument());
}

class EvaluateTest : public ::testing::Test {
 protected:
  static Dataset MakeData() {
    SyntheticSpec spec;
    spec.image_height = 6;
    spec.image_width = 6;
    spec.num_classes = 3;
    spec.num_examples = 100;
    spec.noise_stddev = 0.05f;
    return GenerateSynthetic(spec, 21);
  }

  static Mlp MakeNet(const Dataset& d) {
    MlpConfig cfg = MlpConfig::Uniform(d.dim(), d.num_classes(), 1, 16);
    cfg.seed = 5;
    return std::move(Mlp::Create(cfg)).value();
  }
};

TEST_F(EvaluateTest, AccuracyInUnitInterval) {
  Dataset d = MakeData();
  Mlp net = MakeNet(d);
  const double acc = EvaluateAccuracy(net, d);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST_F(EvaluateTest, IndependentOfEvalBatchSize) {
  Dataset d = MakeData();
  Mlp net = MakeNet(d);
  const double a1 = EvaluateAccuracy(net, d, 1);
  const double a7 = EvaluateAccuracy(net, d, 7);
  const double a256 = EvaluateAccuracy(net, d, 256);
  EXPECT_DOUBLE_EQ(a1, a7);
  EXPECT_DOUBLE_EQ(a7, a256);
}

TEST_F(EvaluateTest, LossIndependentOfEvalBatchSize) {
  Dataset d = MakeData();
  Mlp net = MakeNet(d);
  EXPECT_NEAR(EvaluateLoss(net, d, 3), EvaluateLoss(net, d, 64), 1e-6);
}

TEST_F(EvaluateTest, UntrainedLossNearLogC) {
  Dataset d = MakeData();
  Mlp net = MakeNet(d);
  EXPECT_NEAR(EvaluateLoss(net, d), std::log(3.0), 0.5);
}

TEST_F(EvaluateTest, EmptyDatasetGivesZero) {
  Dataset d = MakeData();
  Mlp net = MakeNet(d);
  Dataset empty = d.Slice(0, 0);
  EXPECT_EQ(EvaluateAccuracy(net, empty), 0.0);
  EXPECT_EQ(EvaluateLoss(net, empty), 0.0);
}

}  // namespace
}  // namespace sampnn
