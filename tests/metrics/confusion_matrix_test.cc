#include "src/metrics/confusion_matrix.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/metrics/accuracy.h"

namespace sampnn {
namespace {

TEST(ConfusionMatrixTest, StartsEmpty) {
  ConfusionMatrix cm(3);
  EXPECT_EQ(cm.num_classes(), 3u);
  EXPECT_EQ(cm.Total(), 0u);
  EXPECT_EQ(cm.Accuracy(), 0.0);
}

TEST(ConfusionMatrixTest, AddAccumulates) {
  ConfusionMatrix cm(3);
  ASSERT_TRUE(cm.Add(0, 0).ok());
  ASSERT_TRUE(cm.Add(0, 1).ok());
  ASSERT_TRUE(cm.Add(2, 2).ok());
  EXPECT_EQ(cm.At(0, 0), 1u);
  EXPECT_EQ(cm.At(0, 1), 1u);
  EXPECT_EQ(cm.At(2, 2), 1u);
  EXPECT_EQ(cm.At(1, 1), 0u);
  EXPECT_EQ(cm.Total(), 3u);
  EXPECT_NEAR(cm.Accuracy(), 2.0 / 3.0, 1e-9);
}

TEST(ConfusionMatrixTest, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_TRUE(cm.Add(2, 0).IsOutOfRange());
  EXPECT_TRUE(cm.Add(0, 2).IsOutOfRange());
  EXPECT_TRUE(cm.Add(-1, 0).IsOutOfRange());
}

TEST(ConfusionMatrixTest, AddBatchValidatesSizes) {
  ConfusionMatrix cm(2);
  std::vector<int32_t> t{0, 1}, p{0};
  EXPECT_TRUE(cm.AddBatch(t, p).IsInvalidArgument());
  std::vector<int32_t> p2{0, 1};
  EXPECT_TRUE(cm.AddBatch(t, p2).ok());
  EXPECT_EQ(cm.Total(), 2u);
}

TEST(ConfusionMatrixTest, PerClassRecallAndPrecision) {
  ConfusionMatrix cm(2);
  // Class 0: 3 examples, 2 correct. Class 1: 2 examples, 1 correct.
  cm.AddBatch(std::vector<int32_t>{0, 0, 0, 1, 1},
              std::vector<int32_t>{0, 0, 1, 1, 0})
      .Abort("add");
  const auto recall = cm.PerClassRecall();
  EXPECT_NEAR(recall[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(recall[1], 0.5, 1e-9);
  const auto precision = cm.PerClassPrecision();
  EXPECT_NEAR(precision[0], 2.0 / 3.0, 1e-9);  // predicted 0 three times
  EXPECT_NEAR(precision[1], 0.5, 1e-9);
}

TEST(ConfusionMatrixTest, EmptyClassesGiveZeroRecall) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0).Abort("add");
  const auto recall = cm.PerClassRecall();
  EXPECT_EQ(recall[1], 0.0);
  EXPECT_EQ(recall[2], 0.0);
}

TEST(ConfusionMatrixTest, PredictionCountsAreColumnSums) {
  ConfusionMatrix cm(3);
  cm.AddBatch(std::vector<int32_t>{0, 1, 2, 0},
              std::vector<int32_t>{1, 1, 1, 0})
      .Abort("add");
  const auto counts = cm.PredictionCounts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(ConfusionMatrixTest, DistinctPredictionsDetectsCollapse) {
  // The §10.3 indicator: a collapsed model predicts few distinct classes.
  ConfusionMatrix collapsed(5);
  for (int32_t t = 0; t < 5; ++t) collapsed.Add(t, 2).Abort("add");
  EXPECT_EQ(collapsed.NumDistinctPredictions(), 1u);

  ConfusionMatrix healthy(5);
  for (int32_t t = 0; t < 5; ++t) healthy.Add(t, t).Abort("add");
  EXPECT_EQ(healthy.NumDistinctPredictions(), 5u);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0).Abort("add");
  cm.Add(1, 0).Abort("add");
  const std::string s = cm.ToString();
  EXPECT_NE(s.find("true  0"), std::string::npos);
  EXPECT_NE(s.find("pred"), std::string::npos);
}

TEST(ConfusionMatrixTest, CsvRowsAreRowNormalizedPercent) {
  ConfusionMatrix cm(2);
  cm.AddBatch(std::vector<int32_t>{0, 0, 0, 0}, std::vector<int32_t>{0, 0, 0, 1})
      .Abort("add");
  const auto rows = cm.ToCsvRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "75.00");
  EXPECT_EQ(rows[0][1], "25.00");
  EXPECT_EQ(rows[1][0], "0.00");  // empty row stays zero
}

TEST(ComputeConfusionTest, TotalsMatchDatasetSize) {
  SyntheticSpec spec;
  spec.image_height = 5;
  spec.image_width = 5;
  spec.num_classes = 4;
  spec.num_examples = 60;
  Dataset d = GenerateSynthetic(spec, 9);
  MlpConfig cfg = MlpConfig::Uniform(d.dim(), 4, 1, 8);
  auto net = std::move(Mlp::Create(cfg)).value();
  ConfusionMatrix cm = ComputeConfusion(net, d, 16);
  EXPECT_EQ(cm.Total(), 60u);
  EXPECT_EQ(cm.num_classes(), 4u);
  EXPECT_NEAR(cm.Accuracy(), EvaluateAccuracy(net, d), 1e-9);
}

}  // namespace
}  // namespace sampnn
