// Reproducibility guarantees: every trainer, the data generators, and the
// LSH structures must be bit-deterministic given equal seeds — the property
// that makes the whole bench harness reproducible.

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/data/batcher.h"
#include "src/data/synthetic.h"
#include "src/lsh/hash_table.h"

namespace sampnn {
namespace {

class DeterminismTest : public ::testing::TestWithParam<TrainerKind> {
 protected:
  static DatasetSplits MakeData() {
    return std::move(GenerateBenchmark("mnist", 7, 400)).ValueOrDie("data");
  }
};

TEST_P(DeterminismTest, TwoRunsProduceIdenticalWeights) {
  const TrainerKind kind = GetParam();
  DatasetSplits data = MakeData();
  const size_t batch = kind == TrainerKind::kMc ? 8 : 2;
  MlpConfig net = PaperMlpConfig(data.train, 2, 32, 42);
  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(kind, batch, 42);
  config.batch_size = batch;
  config.epochs = 2;
  config.eval_each_epoch = false;

  auto run = [&] {
    auto trainer = std::move(MakeTrainer(net, config.trainer)).value();
    Batcher batcher(data.train, batch, config.data_seed);
    Matrix x;
    std::vector<int32_t> y;
    for (size_t e = 0; e < config.epochs; ++e) {
      while (batcher.Next(&x, &y)) {
        std::move(trainer->Step(x, y)).ValueOrDie("step");
      }
    }
    return trainer->net().Clone();
  };
  Mlp net1 = run();
  Mlp net2 = run();
  for (size_t k = 0; k < net1.num_layers(); ++k) {
    EXPECT_TRUE(
        net1.layer(k).weights().AllClose(net2.layer(k).weights(), 0.0f))
        << TrainerKindToString(kind) << " layer " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, DeterminismTest,
    ::testing::Values(TrainerKind::kStandard, TrainerKind::kDropout,
                      TrainerKind::kAdaptiveDropout, TrainerKind::kAlsh,
                      TrainerKind::kMc),
    [](const ::testing::TestParamInfo<TrainerKind>& info) {
      std::string name = TrainerKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DataDeterminismTest, BenchmarkGenerationIsSeedStable) {
  auto a = std::move(GenerateBenchmark("fashion", 11, 500)).value();
  auto b = std::move(GenerateBenchmark("fashion", 11, 500)).value();
  EXPECT_TRUE(a.train.features().AllClose(b.train.features(), 0.0f));
  EXPECT_EQ(a.test.labels(), b.test.labels());
}

TEST(LshDeterminismTest, IndexBuildAndQueryAreSeedStable) {
  Rng data_rng(3);
  Matrix w = Matrix::RandomGaussian(32, 100, data_rng);
  AlshIndexOptions options;
  auto i1 = std::move(AlshIndex::Create(32, options, 99)).value();
  auto i2 = std::move(AlshIndex::Create(32, options, 99)).value();
  i1.Build(w);
  i2.Build(w);
  std::vector<float> q(32, 0.25f);
  std::vector<uint32_t> r1, r2;
  i1.Query(q, &r1);
  i2.Query(q, &r2);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace sampnn
