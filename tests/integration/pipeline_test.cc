// Cross-module integration tests: the full pipeline from synthetic
// benchmark generation through every training method to evaluation, at a
// small scale.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/method_selector.h"
#include "src/data/synthetic.h"
#include "src/metrics/accuracy.h"

namespace sampnn {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Shared across tests: a downscaled MNIST-like benchmark.
    splits_ = new DatasetSplits(
        std::move(GenerateBenchmark("mnist", 7, 200)).ValueOrDie("data"));
  }
  static void TearDownTestSuite() {
    delete splits_;
    splits_ = nullptr;
  }
  static DatasetSplits* splits_;
};

DatasetSplits* PipelineTest::splits_ = nullptr;

class AllMethodsPipelineTest
    : public PipelineTest,
      public ::testing::WithParamInterface<TrainerKind> {};

TEST_P(AllMethodsPipelineTest, TrainsEndToEndWithFiniteLossAndValidResult) {
  const TrainerKind kind = GetParam();
  const size_t batch = kind == TrainerKind::kMc ? 20 : 4;
  MlpConfig net = PaperMlpConfig(splits_->train, 2, 48, 42);
  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(kind, batch, 42);
  config.batch_size = batch;
  config.epochs = 2;
  auto result = RunExperiment(net, config, *splits_);
  ASSERT_TRUE(result.ok()) << TrainerKindToString(kind);
  EXPECT_EQ(result->method, TrainerKindToString(kind));
  for (const auto& epoch : result->epochs) {
    EXPECT_TRUE(std::isfinite(epoch.train_loss));
  }
  EXPECT_GE(result->final_test_accuracy, 0.0);
  EXPECT_LE(result->final_test_accuracy, 1.0);
  ASSERT_TRUE(result->confusion.has_value());
  EXPECT_EQ(result->confusion->Total(), splits_->test.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, AllMethodsPipelineTest,
    ::testing::Values(TrainerKind::kStandard, TrainerKind::kDropout,
                      TrainerKind::kAdaptiveDropout, TrainerKind::kAlsh,
                      TrainerKind::kMc),
    [](const ::testing::TestParamInfo<TrainerKind>& info) {
      std::string name = TrainerKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(PipelineTest, RecommendedMethodBeatsChance) {
  // Follow the §10.4 decision tree for the mini-batch regime and verify the
  // recommended method actually learns the benchmark.
  TrainingScenario scenario;
  scenario.batch_size = 20;
  scenario.hidden_layers = 2;
  const auto rec = RecommendMethod(scenario);
  ASSERT_EQ(rec.method, TrainerKind::kMc);

  MlpConfig net = PaperMlpConfig(splits_->train, 2, 64, 42);
  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(rec.method, 20, 42);
  config.batch_size = 20;
  config.epochs = 6;
  auto result = std::move(RunExperiment(net, config, *splits_)).value();
  EXPECT_GT(result.final_test_accuracy, 0.5);  // chance = 0.1
}

TEST_F(PipelineTest, MethodsShareInitialWeightsAcrossKinds) {
  // With equal seeds, every trainer starts from the same network, making
  // method comparisons well-posed.
  MlpConfig net = PaperMlpConfig(splits_->train, 2, 32, 42);
  TrainerOptions a = PaperTrainerOptions(TrainerKind::kStandard, 20, 42);
  TrainerOptions b = PaperTrainerOptions(TrainerKind::kAlsh, 20, 42);
  auto ta = std::move(MakeTrainer(net, a)).value();
  auto tb = std::move(MakeTrainer(net, b)).value();
  for (size_t k = 0; k < ta->net().num_layers(); ++k) {
    EXPECT_TRUE(ta->net().layer(k).weights().AllClose(
        tb->net().layer(k).weights(), 0.0f));
  }
}

TEST_F(PipelineTest, DeepAlshDegradesRelativeToShallow) {
  // The paper's central negative result at integration level: ALSH accuracy
  // collapses as depth grows while MC stays healthy. Small scale -> compare
  // shallow vs deep ALSH directly.
  auto run_alsh = [&](size_t depth) {
    MlpConfig net = PaperMlpConfig(splits_->train, depth, 48, 42);
    ExperimentConfig config;
    config.trainer = PaperTrainerOptions(TrainerKind::kAlsh, 1, 42);
    config.batch_size = 1;
    config.epochs = 3;
    return std::move(RunExperiment(net, config, *splits_))
        .ValueOrDie("alsh run")
        .final_test_accuracy;
  };
  const double shallow = run_alsh(1);
  const double deep = run_alsh(6);
  EXPECT_GT(shallow, deep - 0.05);
}

TEST_F(PipelineTest, ConfusionCollapseIndicatorForDeepAlsh) {
  // §10.3: deep ALSH nets concentrate predictions on few classes.
  MlpConfig net = PaperMlpConfig(splits_->train, 6, 48, 42);
  ExperimentConfig config;
  config.trainer = PaperTrainerOptions(TrainerKind::kAlsh, 1, 42);
  config.batch_size = 1;
  config.epochs = 2;
  auto result = std::move(RunExperiment(net, config, *splits_)).value();
  ASSERT_TRUE(result.confusion.has_value());
  // A healthy 10-class model predicts all 10 classes; a collapsed one far
  // fewer. Only assert the indicator is available and sane here.
  EXPECT_LE(result.confusion->NumDistinctPredictions(), 10u);
  EXPECT_GE(result.confusion->NumDistinctPredictions(), 1u);
}

}  // namespace
}  // namespace sampnn
