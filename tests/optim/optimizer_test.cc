#include "src/optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/loss.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

Mlp TinyNet() {
  MlpConfig cfg = MlpConfig::Uniform(2, 2, 1, 3);
  cfg.seed = 7;
  return std::move(Mlp::Create(cfg)).value();
}

// Gradients of all ones, for predictable update math.
MlpGrads OnesGrads(const Mlp& net) {
  MlpGrads grads = net.ZeroGrads();
  for (auto& g : grads) {
    g.weights.Fill(1.0f);
    std::fill(g.bias.begin(), g.bias.end(), 1.0f);
  }
  return grads;
}

TEST(SgdTest, SubtractsLrTimesGrad) {
  Mlp net = TinyNet();
  const float before = net.layer(0).weights()(0, 0);
  SgdOptimizer opt(0.5f);
  opt.Step(&net, OnesGrads(net));
  EXPECT_NEAR(net.layer(0).weights()(0, 0), before - 0.5f, 1e-6f);
  EXPECT_NEAR(net.layer(0).bias()[0], -0.5f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  Mlp net = TinyNet();
  const float before = net.layer(0).weights()(0, 0);
  SgdOptimizer opt(0.1f, 0.9f);
  opt.Step(&net, OnesGrads(net));  // v=1, w -= 0.1
  opt.Step(&net, OnesGrads(net));  // v=1.9, w -= 0.19
  EXPECT_NEAR(net.layer(0).weights()(0, 0), before - 0.1f - 0.19f, 1e-5f);
}

TEST(SgdTest, ResetClearsVelocity) {
  Mlp net = TinyNet();
  SgdOptimizer opt(0.1f, 0.9f);
  opt.Step(&net, OnesGrads(net));
  opt.Reset();
  const float before = net.layer(0).weights()(0, 0);
  opt.Step(&net, OnesGrads(net));
  // After reset, the first step is again lr * g (no momentum carry-over).
  EXPECT_NEAR(net.layer(0).weights()(0, 0), before - 0.1f, 1e-5f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  Mlp net = TinyNet();
  const float before = net.layer(0).weights()(0, 0);
  AdamOptimizer opt(0.01f);
  opt.Step(&net, OnesGrads(net));
  // With constant gradients the bias-corrected first Adam step is ~lr.
  EXPECT_NEAR(net.layer(0).weights()(0, 0), before - 0.01f, 1e-4f);
}

TEST(AdamTest, LearningRateAccessors) {
  AdamOptimizer opt(0.01f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.01f);
  opt.set_learning_rate(0.1f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);
  EXPECT_STREQ(opt.name(), "adam");
}

TEST(AdagradTest, StepShrinksWithAccumulation) {
  Mlp net = TinyNet();
  AdagradOptimizer opt(0.1f);
  const float w0 = net.layer(0).weights()(0, 0);
  opt.Step(&net, OnesGrads(net));
  const float step1 = w0 - net.layer(0).weights()(0, 0);
  const float w1 = net.layer(0).weights()(0, 0);
  opt.Step(&net, OnesGrads(net));
  const float step2 = w1 - net.layer(0).weights()(0, 0);
  EXPECT_GT(step1, step2);           // accumulator grows, step shrinks
  EXPECT_NEAR(step1, 0.1f, 1e-4f);   // first step ~ lr * g / |g|
  EXPECT_NEAR(step2, 0.1f / std::sqrt(2.0f), 1e-4f);
}

// Each optimizer must drive a simple quadratic-ish problem (match a fixed
// logit target through the loss) downhill.
class OptimizerConvergenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergenceTest, ReducesLossOnTinyProblem) {
  Mlp net = TinyNet();
  auto optimizer = std::move(MakeOptimizer(GetParam(), 0.05f)).value();

  Rng rng(3);
  Matrix x = Matrix::RandomGaussian(8, 2, rng);
  std::vector<int32_t> labels;
  for (size_t i = 0; i < 8; ++i) {
    labels.push_back(x(i, 0) > 0 ? 1 : 0);  // linearly separable
  }
  MlpWorkspace ws;
  Matrix grad_logits;
  MlpGrads grads;
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    net.Forward(x, &ws);
    auto loss =
        SoftmaxCrossEntropy::LossAndGrad(ws.a.back(), labels, &grad_logits);
    ASSERT_TRUE(loss.ok());
    if (step == 0) first_loss = loss.value();
    last_loss = loss.value();
    net.Backward(x, ws, grad_logits, &grads);
    optimizer->Step(&net, grads);
  }
  EXPECT_LT(last_loss, first_loss * 0.5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergenceTest,
                         ::testing::Values("sgd", "sgd-momentum", "adam",
                                           "adagrad"));

TEST(MakeOptimizerTest, RejectsUnknownNameAndBadLr) {
  EXPECT_TRUE(MakeOptimizer("rmsprop", 0.1f).status().IsInvalidArgument());
  EXPECT_TRUE(MakeOptimizer("sgd", 0.0f).status().IsInvalidArgument());
  EXPECT_TRUE(MakeOptimizer("sgd", -1.0f).status().IsInvalidArgument());
}

TEST(MakeOptimizerTest, BuildsEachKind) {
  for (const char* name : {"sgd", "sgd-momentum", "adam", "adagrad"}) {
    auto opt = MakeOptimizer(name, 0.1f);
    ASSERT_TRUE(opt.ok()) << name;
  }
  EXPECT_STREQ(std::move(MakeOptimizer("sgd-momentum", 0.1f)).value()->name(),
               "sgd");
}

}  // namespace
}  // namespace sampnn
