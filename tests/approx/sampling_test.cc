#include "src/approx/sampling.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(NormalizeWeightsTest, Normalizes) {
  std::vector<double> w{1, 3};
  auto p = NormalizeWeights(w);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ((*p)[0], 0.25);
  EXPECT_DOUBLE_EQ((*p)[1], 0.75);
}

TEST(NormalizeWeightsTest, AllZeroBecomesUniform) {
  std::vector<double> w{0, 0, 0, 0};
  auto p = NormalizeWeights(w);
  ASSERT_TRUE(p.ok());
  for (double v : *p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(NormalizeWeightsTest, RejectsNegativeAndEmpty) {
  std::vector<double> neg{1, -1};
  EXPECT_TRUE(NormalizeWeights(neg).status().IsInvalidArgument());
  std::vector<double> empty;
  EXPECT_TRUE(NormalizeWeights(empty).status().IsInvalidArgument());
}

TEST(AliasTableTest, SamplesMatchDistribution) {
  std::vector<double> probs{0.1, 0.2, 0.3, 0.4};
  auto table = std::move(AliasTable::Create(probs)).value();
  Rng rng(42);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / kDraws, probs[j], 0.01)
        << "index " << j;
  }
}

TEST(AliasTableTest, SingleElement) {
  std::vector<double> probs{1.0};
  auto table = std::move(AliasTable::Create(probs)).value();
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroProbabilityNeverSampled) {
  std::vector<double> probs{0.5, 0.0, 0.5};
  auto table = std::move(AliasTable::Create(probs)).value();
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, ExposesProbabilities) {
  std::vector<double> probs{0.25, 0.75};
  auto table = std::move(AliasTable::Create(probs)).value();
  EXPECT_DOUBLE_EQ(table.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table.Probability(1), 0.75);
  EXPECT_EQ(table.size(), 2u);
}

TEST(AliasTableTest, RenormalizesUnnormalizedInput) {
  std::vector<double> weights{2.0, 6.0};
  auto table = std::move(AliasTable::Create(weights)).value();
  EXPECT_NEAR(table.Probability(1), 0.75, 1e-12);
}

// --- Water filling (Eq. 7) ---

TEST(WaterFillTest, SumsToK) {
  std::vector<double> scores{5, 1, 1, 1, 1, 1};
  for (size_t k : {1u, 2u, 3u, 5u}) {
    const auto p = WaterFillProbabilities(scores, k);
    const double sum = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(sum, static_cast<double>(k), 1e-9) << "k=" << k;
  }
}

TEST(WaterFillTest, CapsAtOne) {
  std::vector<double> scores{100, 1, 1, 1};
  const auto p = WaterFillProbabilities(scores, 2);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GT(p[i], 0.0);
    EXPECT_LT(p[i], 1.0);
  }
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 2.0, 1e-9);
}

TEST(WaterFillTest, KGreaterEqualNGivesAllOnes) {
  std::vector<double> scores{3, 2, 1};
  for (size_t k : {3u, 10u}) {
    const auto p = WaterFillProbabilities(scores, k);
    for (double v : p) EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(WaterFillTest, ProportionalWhenNoCapBinds) {
  std::vector<double> scores{1, 2, 3, 4};  // total 10, k=2 -> p = k*s/10
  const auto p = WaterFillProbabilities(scores, 2);
  EXPECT_NEAR(p[0], 0.2, 1e-9);
  EXPECT_NEAR(p[1], 0.4, 1e-9);
  EXPECT_NEAR(p[2], 0.6, 1e-9);
  EXPECT_NEAR(p[3], 0.8, 1e-9);
}

TEST(WaterFillTest, ZeroScoresGetUniform) {
  std::vector<double> scores{0, 0, 0, 0, 0};
  const auto p = WaterFillProbabilities(scores, 2);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.4);
}

TEST(WaterFillTest, MonotoneInScores) {
  std::vector<double> scores{0.5, 1.5, 2.5, 0.1, 4.0};
  const auto p = WaterFillProbabilities(scores, 2);
  for (size_t i = 0; i < scores.size(); ++i) {
    for (size_t j = 0; j < scores.size(); ++j) {
      if (scores[i] < scores[j]) {
        EXPECT_LE(p[i], p[j] + 1e-12);
      }
    }
  }
}

TEST(WaterFillTest, CascadingPins) {
  // Two huge scores with k=3: both pinned, remaining budget spread on rest.
  std::vector<double> scores{1000, 900, 1, 1};
  const auto p = WaterFillProbabilities(scores, 3);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_NEAR(p[2], 0.5, 1e-9);
  EXPECT_NEAR(p[3], 0.5, 1e-9);
}

TEST(WaterFillTest, EmptyInput) {
  std::vector<double> scores;
  EXPECT_TRUE(WaterFillProbabilities(scores, 3).empty());
}

TEST(BernoulliSampleTest, RespectsZeroAndOne) {
  std::vector<double> probs{0.0, 1.0, 0.0, 1.0};
  Rng rng(3);
  std::vector<uint32_t> out;
  for (int t = 0; t < 50; ++t) {
    BernoulliSample(probs, rng, &out);
    EXPECT_EQ(out, (std::vector<uint32_t>{1, 3}));
  }
}

TEST(BernoulliSampleTest, ExpectedCountMatchesSum) {
  std::vector<double> probs(100, 0.3);
  Rng rng(4);
  double total = 0.0;
  std::vector<uint32_t> out;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    BernoulliSample(probs, rng, &out);
    total += static_cast<double>(out.size());
  }
  EXPECT_NEAR(total / kTrials, 30.0, 0.5);
}

TEST(SampleWithReplacementTest, CorrectCountAndRange) {
  std::vector<double> probs{0.5, 0.5};
  auto table = std::move(AliasTable::Create(probs)).value();
  Rng rng(5);
  const auto samples = SampleWithReplacement(table, 100, rng);
  EXPECT_EQ(samples.size(), 100u);
  for (uint32_t s : samples) EXPECT_LT(s, 2u);
}

}  // namespace
}  // namespace sampnn
