// Property-style parameterized sweeps over the sampling/approximation
// invariants: water-filled probabilities (Eq. 7) and estimator unbiasedness
// must hold across the whole (n, k) grid, not just hand-picked cases.

#include <cmath>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "src/approx/adelman.h"
#include "src/approx/approx_matmul.h"
#include "src/approx/sampling.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"

namespace sampnn {
namespace {

using NkParam = std::tuple<size_t, size_t>;  // n (scores), k (budget)

class WaterFillPropertyTest : public ::testing::TestWithParam<NkParam> {};

TEST_P(WaterFillPropertyTest, InvariantsHoldForRandomScores) {
  const auto [n, k] = GetParam();
  Rng rng(n * 131 + k);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> scores(n);
    for (auto& s : scores) {
      // Mix of scales, including exact zeros.
      const double u = rng.NextDouble();
      s = u < 0.1 ? 0.0 : std::exp(6.0 * rng.NextDouble() - 3.0);
    }
    const auto probs = WaterFillProbabilities(scores, k);
    ASSERT_EQ(probs.size(), n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      // Bounds.
      EXPECT_GE(probs[i], 0.0);
      EXPECT_LE(probs[i], 1.0 + 1e-12);
      sum += probs[i];
    }
    // Budget: sum == min(k, n).
    EXPECT_NEAR(sum, static_cast<double>(std::min(k, n)), 1e-6);
    // Monotonicity in scores.
    for (size_t i = 0; i + 1 < n; ++i) {
      if (scores[i] < scores[i + 1]) {
        EXPECT_LE(probs[i], probs[i + 1] + 1e-9);
      }
    }
    // Zero scores get zero probability when anything positive exists and
    // the budget doesn't force all-ones.
    if (k < n) {
      const double total =
          std::accumulate(scores.begin(), scores.end(), 0.0);
      if (total > 0.0) {
        for (size_t i = 0; i < n; ++i) {
          if (scores[i] == 0.0) {
            EXPECT_EQ(probs[i], 0.0);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WaterFillPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 16, 64, 257),
                       ::testing::Values(1, 2, 7, 32, 300)));

class AliasTablePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AliasTablePropertyTest, EmpiricalMatchesTargetDistribution) {
  const size_t n = GetParam();
  Rng rng(n * 7919);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  auto probs = std::move(NormalizeWeights(weights)).value();
  auto table = std::move(AliasTable::Create(probs)).value();
  std::vector<size_t> counts(n, 0);
  const int draws = 20000 + static_cast<int>(n) * 500;
  for (int i = 0; i < draws; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    const double freq = static_cast<double>(counts[i]) / draws;
    EXPECT_NEAR(freq, probs[i], 0.02 + 3.0 * std::sqrt(probs[i] / draws))
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasTablePropertyTest,
                         ::testing::Values(1, 2, 3, 8, 33, 100));

struct ShapeKParam {
  size_t m, n, p, k;
};

class AdelmanShapePropertyTest
    : public ::testing::TestWithParam<ShapeKParam> {};

TEST_P(AdelmanShapePropertyTest, EstimateIsFiniteAndShapeCorrect) {
  const auto [m, n, p, k] = GetParam();
  Rng rng(m * 100 + n * 10 + p + k);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  Matrix b = Matrix::RandomGaussian(n, p, rng);
  Matrix out;
  ASSERT_TRUE(AdelmanApproxMatmul(a, b, k, rng, &out).ok());
  EXPECT_EQ(out.rows(), m);
  EXPECT_EQ(out.cols(), p);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
}

TEST_P(AdelmanShapePropertyTest, MeanOverTrialsApproachesExact) {
  const auto [m, n, p, k] = GetParam();
  if (k >= n) GTEST_SKIP() << "exact path, covered elsewhere";
  Rng rng(m + n + p + k);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  Matrix b = Matrix::RandomGaussian(n, p, rng);
  Matrix exact(m, p);
  Gemm(a, b, &exact);
  Matrix mean(m, p), out;
  constexpr int kTrials = 1500;
  for (int t = 0; t < kTrials; ++t) {
    AdelmanApproxMatmul(a, b, k, rng, &out).Abort("approx");
    Axpy(1.0f, out, &mean);
  }
  Scale(&mean, 1.0f / kTrials);
  const double err =
      std::move(RelativeFrobeniusError(exact, mean)).ValueOrDie("err");
  EXPECT_LT(err, 0.2) << "m=" << m << " n=" << n << " p=" << p << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdelmanShapePropertyTest,
    ::testing::Values(ShapeKParam{1, 16, 4, 4},    // stochastic-like
                      ShapeKParam{4, 16, 4, 8},
                      ShapeKParam{2, 50, 3, 10},
                      ShapeKParam{8, 8, 8, 8},     // k == n: exact
                      ShapeKParam{3, 100, 5, 25}));

}  // namespace
}  // namespace sampnn
