#include "src/approx/adelman.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/approx/approx_matmul.h"
#include "src/tensor/kernels.h"

namespace sampnn {
namespace {

TEST(AdelmanScoresTest, NormProducts) {
  auto a = std::move(Matrix::FromVector(2, 2, {3, 0, 4, 1})).value();
  auto b = std::move(Matrix::FromVector(2, 2, {1, 0, 0, 2})).value();
  auto scores = AdelmanScores(a, b);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR((*scores)[0], 5.0 * 1.0, 1e-5);
  EXPECT_NEAR((*scores)[1], 1.0 * 2.0, 1e-5);
}

TEST(AdelmanScoresTest, TransAUsesRowNorms) {
  auto a = std::move(Matrix::FromVector(2, 2, {3, 4, 0, 1})).value();
  auto b = std::move(Matrix::FromVector(2, 2, {2, 0, 0, 1})).value();
  auto scores = AdelmanScoresTransA(a, b);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR((*scores)[0], 5.0 * 2.0, 1e-5);
  EXPECT_NEAR((*scores)[1], 1.0 * 1.0, 1e-5);
}

TEST(AdelmanScoresTest, TransBUsesColumnNormsOfBoth) {
  auto a = std::move(Matrix::FromVector(2, 2, {3, 0, 4, 0})).value();
  auto b = std::move(Matrix::FromVector(2, 2, {1, 2, 0, 0})).value();
  auto scores = AdelmanScoresTransB(a, b);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR((*scores)[0], 5.0 * 1.0, 1e-5);
  EXPECT_NEAR((*scores)[1], 0.0 * 2.0, 1e-5);
}

TEST(AdelmanScoresTest, DimensionMismatchErrors) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_TRUE(AdelmanScores(a, b).status().IsInvalidArgument());
  Matrix a2(3, 2), b2(4, 2);
  EXPECT_TRUE(AdelmanScoresTransA(a2, b2).status().IsInvalidArgument());
  Matrix a3(2, 3), b3(2, 4);
  EXPECT_TRUE(AdelmanScoresTransB(a3, b3).status().IsInvalidArgument());
}

// When k >= inner dimension, all three layouts must be exactly the dense
// product (the sampler short-circuits).
TEST(AdelmanExactPathTest, MatmulKGreaterEqualInner) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(4, 6, rng);
  Matrix b = Matrix::RandomGaussian(6, 5, rng);
  Matrix exact(4, 5), out;
  Gemm(a, b, &exact);
  ASSERT_TRUE(AdelmanApproxMatmul(a, b, 6, rng, &out).ok());
  EXPECT_TRUE(out.AllClose(exact, 1e-5f));
  ASSERT_TRUE(AdelmanApproxMatmul(a, b, 100, rng, &out).ok());
  EXPECT_TRUE(out.AllClose(exact, 1e-5f));
}

TEST(AdelmanExactPathTest, TransAKGreaterEqualRows) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(5, 4, rng);
  Matrix b = Matrix::RandomGaussian(5, 3, rng);
  Matrix exact(4, 3), out;
  GemmTransA(a, b, &exact);
  ASSERT_TRUE(AdelmanApproxGemmTransA(a, b, 5, rng, &out).ok());
  EXPECT_TRUE(out.AllClose(exact, 1e-5f));
}

TEST(AdelmanExactPathTest, TransBKGreaterEqualCols) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(3, 6, rng);
  Matrix b = Matrix::RandomGaussian(4, 6, rng);
  Matrix exact(3, 4), out;
  GemmTransB(a, b, &exact);
  ASSERT_TRUE(AdelmanApproxGemmTransB(a, b, 6, rng, &out).ok());
  EXPECT_TRUE(out.AllClose(exact, 1e-5f));
}

TEST(AdelmanApproxTest, RejectsZeroK) {
  Rng rng(4);
  Matrix a(2, 3), b(3, 2), out;
  EXPECT_TRUE(AdelmanApproxMatmul(a, b, 0, rng, &out).IsInvalidArgument());
  Matrix a2(3, 2), b2(3, 2);
  EXPECT_TRUE(
      AdelmanApproxGemmTransA(a2, b2, 0, rng, &out).IsInvalidArgument());
  Matrix a3(2, 3), b3(2, 3);
  EXPECT_TRUE(
      AdelmanApproxGemmTransB(a3, b3, 0, rng, &out).IsInvalidArgument());
}

// Unbiasedness (§6.2: E[A'B'] = AB) for each layout.
template <typename ApproxFn, typename ExactFn>
void CheckUnbiased(ApproxFn approx, ExactFn exact_fn, size_t rows, size_t cols,
                   int trials) {
  Matrix exact(rows, cols);
  exact_fn(&exact);
  Matrix mean(rows, cols), out;
  Rng rng(77);
  for (int t = 0; t < trials; ++t) {
    approx(rng, &out);
    Axpy(1.0f, out, &mean);
  }
  Scale(&mean, 1.0f / static_cast<float>(trials));
  const double err =
      std::move(RelativeFrobeniusError(exact, mean)).ValueOrDie("err");
  EXPECT_LT(err, 0.08);
}

TEST(AdelmanUnbiasedTest, Matmul) {
  Rng rng(5);
  Matrix a = Matrix::RandomGaussian(4, 30, rng);
  Matrix b = Matrix::RandomGaussian(30, 4, rng);
  CheckUnbiased(
      [&](Rng& r, Matrix* out) {
        AdelmanApproxMatmul(a, b, 8, r, out).Abort("approx");
      },
      [&](Matrix* out) { Gemm(a, b, out); }, 4, 4, 4000);
}

TEST(AdelmanUnbiasedTest, TransA) {
  Rng rng(6);
  Matrix a = Matrix::RandomGaussian(30, 4, rng);
  Matrix b = Matrix::RandomGaussian(30, 5, rng);
  CheckUnbiased(
      [&](Rng& r, Matrix* out) {
        AdelmanApproxGemmTransA(a, b, 8, r, out).Abort("approx");
      },
      [&](Matrix* out) { GemmTransA(a, b, out); }, 4, 5, 4000);
}

TEST(AdelmanUnbiasedTest, TransB) {
  Rng rng(7);
  Matrix a = Matrix::RandomGaussian(4, 30, rng);
  Matrix b = Matrix::RandomGaussian(5, 30, rng);
  CheckUnbiased(
      [&](Rng& r, Matrix* out) {
        AdelmanApproxGemmTransB(a, b, 8, r, out).Abort("approx");
      },
      [&](Matrix* out) { GemmTransB(a, b, out); }, 4, 5, 4000);
}

TEST(AdelmanApproxTest, ErrorDecreasesWithK) {
  Rng rng(8);
  Matrix a = Matrix::RandomGaussian(6, 200, rng);
  Matrix b = Matrix::RandomGaussian(200, 6, rng);
  Matrix exact(6, 6);
  Gemm(a, b, &exact);
  auto mean_error = [&](size_t k) {
    double total = 0.0;
    Matrix out;
    Rng local(55);
    for (int t = 0; t < 30; ++t) {
      AdelmanApproxMatmul(a, b, k, local, &out).Abort("approx");
      total += std::move(RelativeFrobeniusError(exact, out)).ValueOrDie("e");
    }
    return total / 30.0;
  };
  const double e10 = mean_error(10);
  const double e100 = mean_error(100);
  EXPECT_LT(e100, e10);
}

TEST(AdelmanApproxTest, PinnedColumnsAlwaysIncluded) {
  // One dominant inner index: water-filling pins it at p=1 so the estimate
  // always contains its exact contribution.
  Matrix a(2, 3);
  a(0, 0) = 100.0f;  // column 0 dominant
  a(1, 0) = 100.0f;
  a(0, 1) = 0.01f;
  a(1, 2) = 0.01f;
  Matrix b(3, 2);
  b(0, 0) = 1.0f;
  b(0, 1) = 1.0f;
  b(1, 0) = 0.01f;
  b(2, 1) = 0.01f;
  Rng rng(9);
  Matrix out;
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(AdelmanApproxMatmul(a, b, 1, rng, &out).ok());
    // Column 0's exact contribution is 100 in every cell of column 0/1.
    EXPECT_GE(out(0, 0), 99.0f);
    EXPECT_GE(out(1, 1), 99.0f);
  }
}

}  // namespace
}  // namespace sampnn
