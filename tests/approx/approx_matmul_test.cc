#include "src/approx/approx_matmul.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/tensor/kernels.h"

namespace sampnn {
namespace {

TEST(MatmulSchemeParseTest, RoundTrips) {
  for (MatmulScheme s : {MatmulScheme::kExact, MatmulScheme::kDrineas,
                         MatmulScheme::kAdelman}) {
    auto parsed = MatmulSchemeFromString(MatmulSchemeToString(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), s);
  }
  EXPECT_TRUE(MatmulSchemeFromString("magic").status().IsInvalidArgument());
}

TEST(SchemeMatmulTest, ExactMatchesGemm) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(4, 6, rng);
  Matrix b = Matrix::RandomGaussian(6, 3, rng);
  Matrix exact(4, 3), out;
  Gemm(a, b, &exact);
  ASSERT_TRUE(SchemeMatmul(MatmulScheme::kExact, a, b, 0, rng, &out).ok());
  EXPECT_TRUE(out.AllClose(exact, 1e-5f));
}

TEST(SchemeMatmulTest, SampledSchemesProduceFiniteEstimates) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(5, 40, rng);
  Matrix b = Matrix::RandomGaussian(40, 5, rng);
  for (MatmulScheme s : {MatmulScheme::kDrineas, MatmulScheme::kAdelman}) {
    Matrix out;
    ASSERT_TRUE(SchemeMatmul(s, a, b, 10, rng, &out).ok());
    EXPECT_EQ(out.rows(), 5u);
    EXPECT_EQ(out.cols(), 5u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_TRUE(std::isfinite(out.data()[i]));
    }
  }
}

TEST(SchemeMatmulTest, DimensionMismatchErrors) {
  Rng rng(3);
  Matrix a(2, 3), b(4, 2), out;
  for (MatmulScheme s : {MatmulScheme::kExact, MatmulScheme::kDrineas,
                         MatmulScheme::kAdelman}) {
    EXPECT_FALSE(SchemeMatmul(s, a, b, 2, rng, &out).ok());
  }
}

TEST(RelativeFrobeniusErrorTest, ZeroForEqual) {
  Matrix a = Matrix::Filled(2, 2, 3.0f);
  auto err = RelativeFrobeniusError(a, a);
  ASSERT_TRUE(err.ok());
  EXPECT_DOUBLE_EQ(err.value(), 0.0);
}

TEST(RelativeFrobeniusErrorTest, KnownValue) {
  Matrix exact = Matrix::Filled(1, 1, 2.0f);
  Matrix est = Matrix::Filled(1, 1, 1.0f);
  auto err = RelativeFrobeniusError(exact, est);
  ASSERT_TRUE(err.ok());
  EXPECT_NEAR(err.value(), 0.5, 1e-9);
}

TEST(RelativeFrobeniusErrorTest, ShapeMismatchErrors) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_TRUE(RelativeFrobeniusError(a, b).status().IsInvalidArgument());
}

TEST(RelativeFrobeniusErrorTest, ZeroExactHandled) {
  Matrix zero(2, 2);
  auto same = RelativeFrobeniusError(zero, zero);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same.value(), 0.0);
  Matrix nonzero = Matrix::Filled(2, 2, 1.0f);
  auto inf = RelativeFrobeniusError(zero, nonzero);
  ASSERT_TRUE(inf.ok());
  EXPECT_TRUE(std::isinf(inf.value()));
}

}  // namespace
}  // namespace sampnn
