#include "src/approx/drineas.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/approx/approx_matmul.h"
#include "src/tensor/kernels.h"

namespace sampnn {
namespace {

TEST(DrineasProbabilitiesTest, ProportionalToNormProducts) {
  // A columns: (1,0) norm 1 and (0,2) norm 2; B rows norms 1 and 1.
  auto a = std::move(Matrix::FromVector(2, 2, {1, 0, 0, 2})).value();
  auto b = std::move(Matrix::FromVector(2, 2, {1, 0, 0, 1})).value();
  auto p = DrineasProbabilities(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR((*p)[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR((*p)[1], 2.0 / 3.0, 1e-9);
}

TEST(DrineasProbabilitiesTest, DimensionMismatchIsError) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_TRUE(DrineasProbabilities(a, b).status().IsInvalidArgument());
}

TEST(DrineasApproxTest, ValidatesArguments) {
  Rng rng(1);
  Matrix a(2, 3), b(3, 2), out;
  EXPECT_TRUE(DrineasApproxMatmul(a, b, 0, rng, &out).IsInvalidArgument());
  Matrix bad_b(4, 2);
  EXPECT_TRUE(DrineasApproxMatmul(a, bad_b, 2, rng, &out).IsInvalidArgument());
  std::vector<double> wrong_probs{0.5, 0.5};  // needs 3
  EXPECT_TRUE(DrineasApproxMatmul(a, b, wrong_probs, 2, rng, &out)
                  .IsInvalidArgument());
}

TEST(DrineasApproxTest, OutputShapeIsMxP) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(5, 12, rng);
  Matrix b = Matrix::RandomGaussian(12, 7, rng);
  Matrix out;
  ASSERT_TRUE(DrineasApproxMatmul(a, b, 4, rng, &out).ok());
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 7u);
}

TEST(DrineasApproxTest, UnbiasedOverManyTrials) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(4, 20, rng);
  Matrix b = Matrix::RandomGaussian(20, 4, rng);
  Matrix exact(4, 4);
  Gemm(a, b, &exact);

  Matrix mean(4, 4);
  Matrix out;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    ASSERT_TRUE(DrineasApproxMatmul(a, b, 5, rng, &out).ok());
    Axpy(1.0f, out, &mean);
  }
  Scale(&mean, 1.0f / kTrials);
  // The estimator is unbiased; the empirical mean converges to the product.
  const double err =
      std::move(RelativeFrobeniusError(exact, mean)).ValueOrDie("err");
  EXPECT_LT(err, 0.05);
}

TEST(DrineasApproxTest, ErrorDecreasesWithMoreSamples) {
  Rng rng(4);
  Matrix a = Matrix::RandomGaussian(8, 100, rng);
  Matrix b = Matrix::RandomGaussian(100, 8, rng);
  Matrix exact(8, 8);
  Gemm(a, b, &exact);

  auto mean_error = [&](size_t c) {
    double total = 0.0;
    Matrix out;
    Rng local(42);
    for (int t = 0; t < 30; ++t) {
      DrineasApproxMatmul(a, b, c, local, &out).Abort("approx");
      total += std::move(RelativeFrobeniusError(exact, out)).ValueOrDie("e");
    }
    return total / 30.0;
  };
  const double err_small = mean_error(5);
  const double err_large = mean_error(80);
  EXPECT_LT(err_large, err_small);
}

TEST(DrineasApproxTest, FullSamplingOfSingleColumnIsExact) {
  // With n=1 the only column is always chosen with p=1 and c scaling cancels.
  Rng rng(5);
  Matrix a = Matrix::RandomGaussian(3, 1, rng);
  Matrix b = Matrix::RandomGaussian(1, 3, rng);
  Matrix exact(3, 3);
  Gemm(a, b, &exact);
  Matrix out;
  ASSERT_TRUE(DrineasApproxMatmul(a, b, 10, rng, &out).ok());
  EXPECT_TRUE(out.AllClose(exact, 1e-4f));
}

TEST(DrineasApproxTest, OptimalProbabilitiesBeatUniform) {
  // Skewed column norms: Eq. 6's importance sampling should have lower
  // variance than uniform sampling at equal c.
  Rng rng(6);
  Matrix a = Matrix::RandomGaussian(6, 50, rng);
  // Make a few columns dominant.
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 5; ++j) a(i, j) *= 20.0f;
  }
  Matrix b = Matrix::RandomGaussian(50, 6, rng);
  Matrix exact(6, 6);
  Gemm(a, b, &exact);

  const std::vector<double> uniform(50, 1.0 / 50.0);
  auto optimal = std::move(DrineasProbabilities(a, b)).value();

  auto mean_error = [&](std::span<const double> probs) {
    double total = 0.0;
    Matrix out;
    Rng local(99);
    for (int t = 0; t < 60; ++t) {
      DrineasApproxMatmul(a, b, probs, 10, local, &out).Abort("approx");
      total += std::move(RelativeFrobeniusError(exact, out)).ValueOrDie("e");
    }
    return total / 60.0;
  };
  EXPECT_LT(mean_error(optimal), mean_error(uniform));
}

}  // namespace
}  // namespace sampnn
