#include "src/serve/model_backend.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/alsh_trainer.h"
#include "src/core/trainer.h"
#include "src/nn/mlp.h"
#include "src/util/deadline.h"

namespace sampnn {
namespace {

Mlp SmallNet() {
  return std::move(Mlp::Create(MlpConfig::Uniform(/*input_dim=*/6,
                                                  /*output_dim=*/3,
                                                  /*depth=*/2, /*width=*/16)))
      .ValueOrDie("net");
}

Matrix SmallBatch(size_t rows = 4, size_t cols = 6) {
  Matrix batch(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      batch(i, j) = 0.1f * static_cast<float>(i + 1) * static_cast<float>(j);
    }
  }
  return batch;
}

TEST(DenseBackendTest, MatchesExactForwardAtBothRungs) {
  Mlp net = SmallNet();
  MlpWorkspace ws;
  const Matrix batch = SmallBatch();
  const Matrix& expected = net.Forward(batch, &ws);

  auto backend = MakeDenseBackend(SmallNet());
  EXPECT_STREQ(backend->name(), "dense");
  EXPECT_EQ(backend->input_dim(), 6u);
  EXPECT_EQ(backend->output_dim(), 3u);
  for (ServeQuality q : {ServeQuality::kFull, ServeQuality::kDegraded}) {
    Matrix logits;
    CancelContext ctx;
    ASSERT_TRUE(backend->Forward(batch, ctx, q, &logits).ok());
    ASSERT_EQ(logits.rows(), batch.rows());
    ASSERT_EQ(logits.cols(), 3u);
    for (size_t i = 0; i < logits.rows(); ++i) {
      for (size_t j = 0; j < logits.cols(); ++j) {
        EXPECT_FLOAT_EQ(logits(i, j), expected(i, j));
      }
    }
  }
}

TEST(DenseBackendTest, RejectsBadBatchShapes) {
  auto backend = MakeDenseBackend(SmallNet());
  Matrix logits;
  CancelContext ctx;
  EXPECT_TRUE(backend
                  ->Forward(Matrix(0, 6), ctx, ServeQuality::kFull, &logits)
                  .IsInvalidArgument());
  EXPECT_TRUE(backend
                  ->Forward(Matrix(2, 5), ctx, ServeQuality::kFull, &logits)
                  .IsInvalidArgument());
}

TEST(DenseBackendTest, HonorsCancellationAndDeadline) {
  auto backend = MakeDenseBackend(SmallNet());
  Matrix logits;

  CancelContext cancelled;
  cancelled.token.Cancel();
  EXPECT_TRUE(backend
                  ->Forward(SmallBatch(), cancelled, ServeQuality::kFull,
                            &logits)
                  .IsResourceExhausted());

  ManualClock clock;
  CancelContext expired;
  expired.deadline = Deadline::FromNowMillis(0, &clock);
  EXPECT_TRUE(backend
                  ->Forward(SmallBatch(), expired, ServeQuality::kFull,
                            &logits)
                  .IsDeadlineExceeded());
}

TEST(McBackendTest, FullIsExactDegradedIsSampled) {
  Mlp net = SmallNet();
  MlpWorkspace ws;
  const Matrix batch = SmallBatch();
  const Matrix& expected = net.Forward(batch, &ws);

  McBackendOptions options;
  options.degraded_samples = 4;
  auto backend = MakeMcBackend(SmallNet(), options);
  EXPECT_STREQ(backend->name(), "mc");

  Matrix full;
  CancelContext ctx;
  ASSERT_TRUE(
      backend->Forward(batch, ctx, ServeQuality::kFull, &full).ok());
  for (size_t i = 0; i < full.rows(); ++i) {
    for (size_t j = 0; j < full.cols(); ++j) {
      EXPECT_FLOAT_EQ(full(i, j), expected(i, j));
    }
  }

  // The degraded rung estimates the products from 4 Adelman samples: right
  // shape, finite values — not the exact logits.
  Matrix degraded;
  ASSERT_TRUE(
      backend->Forward(batch, ctx, ServeQuality::kDegraded, &degraded).ok());
  ASSERT_EQ(degraded.rows(), batch.rows());
  ASSERT_EQ(degraded.cols(), 3u);
  for (size_t i = 0; i < degraded.rows(); ++i) {
    for (size_t j = 0; j < degraded.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(degraded(i, j)));
    }
  }
}

TEST(McBackendTest, DegradedHonorsCancellation) {
  auto backend = MakeMcBackend(SmallNet(), McBackendOptions{});
  Matrix logits;
  CancelContext cancelled;
  cancelled.token.Cancel();
  EXPECT_TRUE(backend
                  ->Forward(SmallBatch(), cancelled, ServeQuality::kDegraded,
                            &logits)
                  .IsResourceExhausted());
}

class AlshBackendTest : public ::testing::Test {
 protected:
  std::unique_ptr<ModelBackend> MakeBackend() {
    TrainerOptions options;
    options.kind = TrainerKind::kAlsh;
    std::unique_ptr<AlshTrainer> trainer =
        std::move(AlshTrainer::Create(SmallNet(), options.alsh,
                                      /*learning_rate=*/1e-3f, /*seed=*/42))
            .ValueOrDie("alsh");
    return MakeAlshBackend(std::move(trainer));
  }
};

TEST_F(AlshBackendTest, FullQualityProbesPerSample) {
  auto backend = MakeBackend();
  EXPECT_STREQ(backend->name(), "alsh");
  Matrix logits;
  CancelContext ctx;
  const Matrix batch = SmallBatch();
  ASSERT_TRUE(
      backend->Forward(batch, ctx, ServeQuality::kFull, &logits).ok());
  ASSERT_EQ(logits.rows(), batch.rows());
  ASSERT_EQ(logits.cols(), 3u);
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t j = 0; j < logits.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(logits(i, j)));
    }
  }
}

TEST_F(AlshBackendTest, DegradedFallsBackToBatchedDense) {
  // The degraded rung must equal the exact dense forward of the same net.
  Mlp reference = SmallNet();
  MlpWorkspace ws;
  const Matrix batch = SmallBatch();
  const Matrix& expected = reference.Forward(batch, &ws);

  auto backend = MakeBackend();
  Matrix logits;
  CancelContext ctx;
  ASSERT_TRUE(
      backend->Forward(batch, ctx, ServeQuality::kDegraded, &logits).ok());
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t j = 0; j < logits.cols(); ++j) {
      EXPECT_FLOAT_EQ(logits(i, j), expected(i, j));
    }
  }
}

TEST_F(AlshBackendTest, FullQualityHonorsCancellationBetweenSamples) {
  auto backend = MakeBackend();
  Matrix logits;
  CancelContext cancelled;
  cancelled.token.Cancel();
  EXPECT_TRUE(backend
                  ->Forward(SmallBatch(), cancelled, ServeQuality::kFull,
                            &logits)
                  .IsResourceExhausted());
}

}  // namespace
}  // namespace sampnn
