// Concurrent shutdown tests for InferenceService, written for TSan (the
// `serve` ctest label is part of the tsan preset filter): Submit racing
// Stop from several threads, concurrent Stop callers, destructor-driven
// drain. The invariant under every interleaving: every future resolves
// with a terminal status, nothing hangs, and the outcome counters conserve.

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/mlp.h"
#include "src/serve/inference_service.h"
#include "src/serve/model_backend.h"

namespace sampnn {
namespace {

Mlp SmallNet() {
  return std::move(Mlp::Create(MlpConfig::Uniform(/*input_dim=*/4,
                                                  /*output_dim=*/3,
                                                  /*depth=*/1, /*width=*/8)))
      .ValueOrDie("net");
}

std::vector<float> SmallInput() { return {0.1f, 0.2f, 0.3f, 0.4f}; }

TEST(ServeShutdownTest, ConcurrentSubmittersRacingCancelPendingStop) {
  ServeOptions options;
  options.queue_capacity = 16;
  options.workers = 2;
  options.max_batch = 4;
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), options))
                     .ValueOrDie("service");

  constexpr int kSubmitters = 4;
  constexpr int kRequestsPerSubmitter = 100;
  std::atomic<uint64_t> resolved{0}, ok{0}, rejected_after_stop{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kRequestsPerSubmitter; ++i) {
        const InferenceResult r =
            service->Submit(SmallInput(), Deadline::Never()).get();
        // Terminal one way or another; no future may dangle.
        resolved.fetch_add(1);
        if (r.status.ok()) {
          ok.fetch_add(1);
        } else if (r.status.IsFailedPrecondition()) {
          rejected_after_stop.fetch_add(1);
        } else {
          ASSERT_TRUE(r.status.IsResourceExhausted()) << r.status.ToString();
        }
      }
    });
  }
  // Two racing stoppers while submissions are in flight: Stop must be
  // idempotent and safe to call concurrently.
  std::thread stopper1(
      [&] { service->Stop(InferenceService::StopMode::kCancelPending); });
  std::thread stopper2(
      [&] { service->Stop(InferenceService::StopMode::kCancelPending); });
  for (auto& t : submitters) t.join();
  stopper1.join();
  stopper2.join();

  EXPECT_EQ(resolved.load(),
            static_cast<uint64_t>(kSubmitters * kRequestsPerSubmitter));
  const ServeStats stats = service->Stats();
  // Conservation over requests that reached admission control: everything
  // admitted reached exactly one terminal outcome.
  EXPECT_EQ(stats.admitted, stats.completed + stats.completed_degraded +
                                stats.deadline_exceeded + stats.cancelled);
  EXPECT_EQ(ok.load(), stats.completed + stats.completed_degraded);
}

TEST(ServeShutdownTest, DrainStopCompletesEverythingAdmitted) {
  ServeOptions options;
  options.queue_capacity = 64;
  options.workers = 2;
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), options))
                     .ValueOrDie("service");
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service->Submit(SmallInput(), Deadline::Never()));
  }
  service->Stop(InferenceService::StopMode::kDrain);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  const ServeStats stats = service->Stats();
  EXPECT_EQ(stats.completed + stats.completed_degraded, stats.admitted);
}

TEST(ServeShutdownTest, DestructorDrainsOutstandingWork) {
  std::vector<std::future<InferenceResult>> futures;
  {
    auto service = std::move(InferenceService::Create(
                                 MakeDenseBackend(SmallNet()), ServeOptions()))
                       .ValueOrDie("service");
    for (int i = 0; i < 16; ++i) {
      futures.push_back(service->Submit(SmallInput(), Deadline::Never()));
    }
  }  // ~InferenceService == Stop(kDrain)
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
}

TEST(ServeShutdownTest, StopIsIdempotentAcrossModes) {
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), ServeOptions()))
                     .ValueOrDie("service");
  service->Stop(InferenceService::StopMode::kDrain);
  service->Stop(InferenceService::StopMode::kCancelPending);
  service->Stop(InferenceService::StopMode::kDrain);
  EXPECT_TRUE(
      service->Submit(SmallInput()).get().status.IsFailedPrecondition());
}

TEST(ServeShutdownTest, RepeatedCreateStopCycles) {
  for (int round = 0; round < 10; ++round) {
    ServeOptions options;
    options.workers = 1 + round % 3;
    auto service = std::move(InferenceService::Create(
                                 MakeDenseBackend(SmallNet()), options))
                       .ValueOrDie("service");
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(service->Submit(SmallInput(), Deadline::Never()));
    }
    for (auto& f : futures) {
      ASSERT_TRUE(f.get().status.ok()) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace sampnn
