// Deterministic service tests: all timing runs on a ManualClock, so
// deadline expiry, the watchdog budget, and injected delays are step-exact.
// Real time is only ever used to *wait for* an event that is already
// guaranteed to happen (a worker entering the backend, a future resolving),
// never to decide an outcome.

#include "src/serve/inference_service.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/nn/mlp.h"
#include "src/resilience/fault_injector.h"
#include "src/serve/model_backend.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"

namespace sampnn {
namespace {

Mlp SmallNet() {
  return std::move(Mlp::Create(MlpConfig::Uniform(/*input_dim=*/4,
                                                  /*output_dim=*/3,
                                                  /*depth=*/1, /*width=*/8)))
      .ValueOrDie("net");
}

std::vector<float> SmallInput(float scale = 1.0f) {
  return {0.1f * scale, 0.2f * scale, 0.3f * scale, 0.4f * scale};
}

// Test backend: the first `blocking_calls` Forward invocations park until
// their CancelContext stops them (standing in for a wedged worker); later
// calls return zero logits immediately and record the quality rung served.
class GateBackend : public ModelBackend {
 public:
  explicit GateBackend(int blocking_calls)
      : blocking_calls_(blocking_calls) {}

  const char* name() const override { return "gate"; }
  size_t input_dim() const override { return 4; }
  size_t output_dim() const override { return 3; }

  Status Forward(const Matrix& batch, const CancelContext& ctx,
                 ServeQuality quality, Matrix* logits) override {
    entered_rows_.fetch_add(batch.rows());
    if (blocking_calls_.fetch_sub(1) > 0) {
      // A truly wedged worker does not poll deadlines: only an explicit
      // cancellation (the watchdog's trip, or a kCancelPending stop) frees
      // it — which makes the watchdog-trip count deterministic.
      while (!ctx.token.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return ctx.StopStatus();
    }
    if (quality == ServeQuality::kDegraded) {
      degraded_rows_.fetch_add(batch.rows());
    }
    *logits = Matrix(batch.rows(), output_dim());
    return Status::OK();
  }

  size_t entered_rows() const { return entered_rows_.load(); }
  size_t degraded_rows() const { return degraded_rows_.load(); }

 private:
  std::atomic<int> blocking_calls_;
  std::atomic<size_t> entered_rows_{0};
  std::atomic<size_t> degraded_rows_{0};
};

// Spin (real time) until `pred` holds; the events awaited are guaranteed,
// the timeout only turns a wedged test into a failure instead of a hang.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 10000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class InferenceServiceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::ClearGlobal();
    SetTelemetryEnabled(false);
  }
};

TEST_F(InferenceServiceTest, CreateValidatesOptions) {
  ServeOptions bad;
  bad.queue_capacity = 0;
  EXPECT_TRUE(InferenceService::Create(MakeDenseBackend(SmallNet()), bad)
                  .status()
                  .IsInvalidArgument());
  bad = ServeOptions();
  bad.workers = 0;
  EXPECT_TRUE(InferenceService::Create(MakeDenseBackend(SmallNet()), bad)
                  .status()
                  .IsInvalidArgument());
  bad = ServeOptions();
  bad.recover_below_fraction = 0.9;  // above degrade_above_fraction
  EXPECT_TRUE(InferenceService::Create(MakeDenseBackend(SmallNet()), bad)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(InferenceService::Create(std::unique_ptr<ModelBackend>(),
                                       ServeOptions())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(InferenceService::Create(std::shared_ptr<ModelRegistry>(),
                                       ServeOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(InferenceServiceTest, ServesSimpleRequests) {
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), ServeOptions()))
                     .ValueOrDie("service");
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service->Submit(SmallInput(), Deadline::Never()));
  }
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.logits.size(), 3u);
    EXPECT_GE(r.predicted, 0);
    EXPECT_LT(r.predicted, 3);
    EXPECT_FALSE(r.degraded);
  }
  const ServeStats stats = service->Stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.completed, 8u);
}

TEST_F(InferenceServiceTest, RejectsWrongInputWidth) {
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), ServeOptions()))
                     .ValueOrDie("service");
  InferenceResult r = service->Submit({1.0f, 2.0f}).get();
  EXPECT_TRUE(r.status.IsInvalidArgument());
}

TEST_F(InferenceServiceTest, ExpiredAtSubmitFailsAtDequeue) {
  ManualClock clock;
  ServeOptions options;
  options.clock = &clock;
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), options))
                     .ValueOrDie("service");
  // Expires at "now": already expired when a worker dequeues it.
  InferenceResult r =
      service->Submit(SmallInput(), Deadline::FromNowMillis(0, &clock)).get();
  EXPECT_TRUE(r.status.IsDeadlineExceeded());
  EXPECT_EQ(service->Stats().deadline_exceeded, 1u);
}

// The ISSUE's acceptance scenario: queue capacity Q, N >> Q requests, one
// wedged worker — the outcome mix is exact, driven entirely by the manual
// clock and a deterministic gate, never by wall-clock races.
TEST_F(InferenceServiceTest, DeterministicOverloadMixWithWatchdogRescue) {
  // Telemetry on for this scenario: the shed path must export the same
  // retry-after hint it hands to clients as a gauge (DESIGN.md §12).
  SetTelemetryEnabled(true);
  MetricsRegistry::Get().GetGauge("serve.retry_after_ms").Set(0.0);
  ManualClock clock;
  auto backend = std::make_unique<GateBackend>(/*blocking_calls=*/1);
  GateBackend* gate = backend.get();

  ServeOptions options;
  options.clock = &clock;
  options.queue_capacity = 4;   // Q
  options.workers = 1;
  options.max_batch = 1;
  options.degraded_max_batch = 2;
  options.watchdog_budget_ms = 100;  // manual-clock budget
  options.watchdog_poll_ms = 1;      // real-time poll cadence
  auto service = std::move(InferenceService::Create(std::move(backend),
                                                    options))
                     .ValueOrDie("service");

  // R0 enters the backend and wedges there (the gate blocks until its
  // context stops). Waiting for entered_rows() guarantees the worker has
  // popped R0, so the queue below fills deterministically.
  std::future<InferenceResult> r0 =
      service->Submit(SmallInput(), Deadline::FromNowMillis(50, &clock));
  ASSERT_TRUE(WaitFor([&] { return gate->entered_rows() == 1; }));

  // N = 20 >> Q = 4: exactly 4 admitted, 16 shed, all decided at Submit.
  std::vector<std::future<InferenceResult>> queued;
  for (int i = 0; i < 20; ++i) {
    queued.push_back(
        service->Submit(SmallInput(), Deadline::FromNowMillis(10000, &clock)));
  }
  ServeStats stats = service->Stats();
  EXPECT_EQ(stats.submitted, 21u);
  EXPECT_EQ(stats.admitted, 5u);  // R0 + 4 queued
  EXPECT_EQ(stats.shed, 16u);
  EXPECT_EQ(stats.queue_depth, 4u);
  EXPECT_EQ(stats.executing, 1u);  // R0, wedged in the gate
  // Occupancy crossed 0.5 while the queue filled: degraded before any shed.
  EXPECT_TRUE(service->degraded());
  EXPECT_EQ(stats.degrade_transitions, 1u);

  // Shed futures resolve at Submit; the 4 admitted ones stay pending while
  // the worker is wedged. Every shed result carries a retry-after hint.
  std::vector<std::future<InferenceResult>> admitted_futures;
  size_t shed_count = 0;
  for (auto& f : queued) {
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      const InferenceResult r = f.get();
      EXPECT_TRUE(r.status.IsResourceExhausted()) << r.status.ToString();
      EXPECT_GT(r.retry_after_ms, 0);
      ++shed_count;
    } else {
      admitted_futures.push_back(std::move(f));
    }
  }
  EXPECT_EQ(shed_count, 16u);
  ASSERT_EQ(admitted_futures.size(), 4u);
  // The last shed's hint was mirrored to the registry for /metricsz.
  EXPECT_GT(MetricsRegistry::Get().GetGauge("serve.retry_after_ms").Value(),
            0.0);

  // Advance past both R0's deadline (50ms) and the watchdog budget
  // (100ms). The watchdog — polling in real time but measuring on the
  // injected clock — trips exactly once, cancels the wedged batch, and R0
  // resolves as kDeadlineExceeded.
  clock.AdvanceMillis(200);
  const InferenceResult r0_result = r0.get();
  EXPECT_TRUE(r0_result.status.IsDeadlineExceeded())
      << r0_result.status.ToString();

  // The rescued worker drains the 4 admitted requests on the degraded rung
  // (occupancy stays above the recovery threshold until the queue empties).
  for (auto& f : admitted_futures) {
    const InferenceResult r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.degraded);
  }
  service->Stop();

  stats = service->Stats();
  EXPECT_EQ(stats.submitted, 21u);
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.shed, 16u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);  // R0
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.completed_degraded, 4u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.watchdog_trips, 1u);      // exactly one trip, CAS-guarded
  EXPECT_EQ(stats.degrade_transitions, 1u);  // trip found it already degraded
  EXPECT_EQ(gate->degraded_rows(), 4u);
}

TEST_F(InferenceServiceTest, RecoversToHealthyAfterDrain) {
  ManualClock clock;
  auto backend = std::make_unique<GateBackend>(/*blocking_calls=*/1);
  GateBackend* gate = backend.get();
  ServeOptions options;
  options.clock = &clock;
  options.queue_capacity = 4;
  options.workers = 1;
  options.max_batch = 4;
  options.watchdog_budget_ms = 100;
  options.watchdog_poll_ms = 1;
  auto service = std::move(InferenceService::Create(std::move(backend),
                                                    options))
                     .ValueOrDie("service");

  // Wedge the worker, fill the queue past the degrade threshold, rescue.
  std::future<InferenceResult> r0 =
      service->Submit(SmallInput(), Deadline::FromNowMillis(50, &clock));
  ASSERT_TRUE(WaitFor([&] { return gate->entered_rows() == 1; }));
  std::vector<std::future<InferenceResult>> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(
        service->Submit(SmallInput(), Deadline::FromNowMillis(10000, &clock)));
  }
  EXPECT_TRUE(service->degraded());
  clock.AdvanceMillis(200);
  EXPECT_TRUE(r0.get().status.IsDeadlineExceeded());
  for (auto& f : queued) EXPECT_TRUE(f.get().status.ok());

  // Queue is empty now: the next request is served healthy (hysteresis
  // recovery at 1/4 <= recover_below_fraction).
  InferenceResult after = service->Submit(SmallInput(), Deadline::Never()).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.degraded);
  EXPECT_FALSE(service->degraded());
}

TEST_F(InferenceServiceTest, InjectedDelayFaultExpiresDeadlineDeterministically) {
  // delay@1 + ManualClock: the injected sleep advances the service clock by
  // fault_delay_ms, pushing the first admitted request past its deadline.
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("delay@1")).value());
  ManualClock clock;
  ServeOptions options;
  options.clock = &clock;
  options.fault_delay_ms = 30;
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), options))
                     .ValueOrDie("service");
  InferenceResult r =
      service->Submit(SmallInput(), Deadline::FromNowMillis(20, &clock)).get();
  EXPECT_TRUE(r.status.IsDeadlineExceeded()) << r.status.ToString();
  EXPECT_EQ(clock.NowMillis(), 30);  // the fault's sleep, nothing else
}

TEST_F(InferenceServiceTest, InjectedAdmissionRejectShedsOneRequest) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("reject-admission@1")).value());
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), ServeOptions()))
                     .ValueOrDie("service");
  // Step counts admitted requests: the first is admitted (step 0 -> 1), the
  // second hits the armed fault, the third is admitted again.
  EXPECT_TRUE(service->Submit(SmallInput(), Deadline::Never()).get().status.ok());
  EXPECT_TRUE(service->Submit(SmallInput(), Deadline::Never())
                  .get()
                  .status.IsResourceExhausted());
  EXPECT_TRUE(service->Submit(SmallInput(), Deadline::Never()).get().status.ok());
  const ServeStats stats = service->Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 2u);
}

TEST_F(InferenceServiceTest, SubmitAfterStopFailsPrecondition) {
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), ServeOptions()))
                     .ValueOrDie("service");
  service->Stop();
  InferenceResult r = service->Submit(SmallInput()).get();
  EXPECT_TRUE(r.status.IsFailedPrecondition());
}

TEST_F(InferenceServiceTest, StatsConservationUnderConcurrentLoad) {
  ServeOptions options;
  options.queue_capacity = 8;
  options.workers = 2;
  auto service = std::move(InferenceService::Create(
                               MakeDenseBackend(SmallNet()), options))
                     .ValueOrDie("service");
  std::vector<std::thread> clients;
  std::atomic<uint64_t> ok{0}, shed{0}, other{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const InferenceResult r =
            service->Submit(SmallInput(), Deadline::Never()).get();
        if (r.status.ok()) {
          ok.fetch_add(1);
        } else if (r.status.IsResourceExhausted()) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service->Stop();
  const ServeStats stats = service->Stats();
  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(stats.submitted, 200u);
  EXPECT_EQ(stats.admitted + stats.shed, 200u);
  EXPECT_EQ(stats.completed + stats.completed_degraded, ok.load());
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.admitted, stats.completed + stats.completed_degraded +
                                stats.deadline_exceeded + stats.cancelled);
}

}  // namespace
}  // namespace sampnn
