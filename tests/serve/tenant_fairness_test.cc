// Multi-tenant serving tests: quota isolation, deficit-round-robin batch
// assembly, per-tenant retry-after hints, and zero-drop hot swap under
// sustained load. The overload test runs entirely on a frozen ManualClock:
// every latency is 0, so the EWMA seeds to its 1-q10 floor, per-request
// cost prices at exactly 1 ms, and the retry hints are exact integers —
// the admitted/shed mix and the batch compositions are asserted equal, not
// approximately.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/mlp.h"
#include "src/registry/model_registry.h"
#include "src/resilience/fault_injector.h"
#include "src/serve/inference_service.h"
#include "src/serve/model_backend.h"
#include "src/serve/tenant.h"
#include "src/telemetry/telemetry.h"

namespace sampnn {
namespace {

Mlp SmallNet(uint64_t seed = 42) {
  MlpConfig config = MlpConfig::Uniform(/*input_dim=*/4, /*output_dim=*/3,
                                        /*depth=*/1, /*width=*/8);
  config.seed = seed;
  return std::move(Mlp::Create(config)).ValueOrDie("net");
}

// Tenant-coded input row: the first feature identifies the submitter, so a
// recording backend can reconstruct batch compositions.
constexpr int kHeavy = 1;
constexpr int kLight = 2;
constexpr int kPlug = 3;

std::vector<float> CodedInput(int code) {
  return {static_cast<float>(code), 0.2f, 0.3f, 0.4f};
}

// Records the tenant-code composition of every batch it serves, and parks
// (wedging its worker) while the gate is closed.
class RecordingBackend : public ModelBackend {
 public:
  const char* name() const override { return "recording"; }
  size_t input_dim() const override { return 4; }
  size_t output_dim() const override { return 3; }

  Status Forward(const Matrix& batch, const CancelContext& ctx,
                 ServeQuality /*quality*/, Matrix* logits) override {
    std::vector<int> codes;
    codes.reserve(batch.rows());
    for (size_t r = 0; r < batch.rows(); ++r) {
      codes.push_back(static_cast<int>(batch(r, 0)));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      batches_.push_back(std::move(codes));
    }
    entered_.fetch_add(1);
    while (!gate_open_.load() && !ctx.token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ctx.token.cancelled()) return ctx.StopStatus();
    *logits = Matrix(batch.rows(), output_dim());
    return Status::OK();
  }

  void OpenGate() { gate_open_.store(true); }
  void CloseGate() { gate_open_.store(false); }
  size_t entered() const { return entered_.load(); }
  std::vector<std::vector<int>> batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

 private:
  std::atomic<bool> gate_open_{true};
  std::atomic<size_t> entered_{0};
  mutable std::mutex mu_;
  std::vector<std::vector<int>> batches_;
};

template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 10000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

const TenantStats* FindTenant(const ServeStats& stats,
                              const std::string& name) {
  for (const auto& tenant : stats.tenants) {
    if (tenant.name == name) return &tenant;
  }
  return nullptr;
}

class TenantFairnessTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::ClearGlobal();
    SetTelemetryEnabled(false);
  }
};

TEST_F(TenantFairnessTest, ParseTenantQuotasAcceptsWellFormedSpecs) {
  auto tenants = ParseTenantQuotas("alpha=4:2,beta=8");
  ASSERT_TRUE(tenants.ok()) << tenants.status().ToString();
  ASSERT_EQ(tenants->size(), 2u);
  EXPECT_EQ((*tenants)[0].name, "alpha");
  EXPECT_EQ((*tenants)[0].quota, 4u);
  EXPECT_EQ((*tenants)[0].weight, 2u);
  EXPECT_EQ((*tenants)[1].name, "beta");
  EXPECT_EQ((*tenants)[1].quota, 8u);
  EXPECT_EQ((*tenants)[1].weight, 1u);  // weight defaults to 1
  EXPECT_TRUE(ParseTenantQuotas("")->empty());
}

TEST_F(TenantFairnessTest, ParseTenantQuotasRejectsMalformedSpecs) {
  EXPECT_TRUE(ParseTenantQuotas("alpha").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTenantQuotas("=4").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTenantQuotas("alpha=0").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTenantQuotas("alpha=4:0").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTenantQuotas("alpha=x").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseTenantQuotas("alpha=4,alpha=8").status().IsInvalidArgument());
}

TEST_F(TenantFairnessTest, CreateValidatesTenantConfigs) {
  ServeOptions options;
  options.tenants = {{"a", 4, 1}, {"a", 8, 1}};
  EXPECT_TRUE(InferenceService::Create(MakeDenseBackend(SmallNet()), options)
                  .status()
                  .IsInvalidArgument());
  options.tenants = {{"", 4, 1}};
  EXPECT_TRUE(InferenceService::Create(MakeDenseBackend(SmallNet()), options)
                  .status()
                  .IsInvalidArgument());
  options.tenants = {{"a", 0, 1}};
  EXPECT_TRUE(InferenceService::Create(MakeDenseBackend(SmallNet()), options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(TenantFairnessTest, StatsExposePerTenantSlicesInConfigOrder) {
  ServeOptions options;
  options.tenants = {{"heavy", 8, 3}, {"light", 4, 1}};
  auto service =
      std::move(InferenceService::Create(MakeDenseBackend(SmallNet()),
                                         options))
          .ValueOrDie("service");
  const ServeStats stats = service->Stats();
  ASSERT_EQ(stats.tenants.size(), 3u);  // heavy, light, appended default
  EXPECT_EQ(stats.tenants[0].name, "heavy");
  EXPECT_EQ(stats.tenants[0].quota, 8u);
  EXPECT_EQ(stats.tenants[0].weight, 3u);
  EXPECT_EQ(stats.tenants[1].name, "light");
  EXPECT_EQ(stats.tenants[2].name, kDefaultTenant);
  EXPECT_EQ(stats.tenants[2].quota, options.queue_capacity);
  service->Stop();
}

// The centerpiece: a wedged worker, a flooding heavy tenant and a modest
// light one. Quotas bound each tenant's backlog (heavy sheds at 8, light at
// 4 — both tenant-bound, the global queue still has room), the retry hints
// price each tenant's own backlog, and once the worker resumes, DRR hands
// out batch slots 3:1 — the exact compositions are asserted.
TEST_F(TenantFairnessTest, MixedTenantOverloadShedsAndSchedulesExactly) {
  ManualClock clock(0);  // frozen: every latency is 0, every hint exact
  auto backend = std::make_unique<RecordingBackend>();
  RecordingBackend* be = backend.get();

  ServeOptions options;
  options.clock = &clock;
  options.workers = 1;
  options.max_batch = 4;
  options.queue_capacity = 16;
  options.degrade_above_fraction = 1.0;  // occupancy never trips the ladder
  options.recover_below_fraction = 0.25;
  options.tenants = {{"heavy", /*quota=*/8, /*weight=*/3},
                     {"light", /*quota=*/4, /*weight=*/1}};
  auto service = std::move(InferenceService::Create(std::move(backend),
                                                    options))
                     .ValueOrDie("service");

  // Seed one completion per paying tenant so each has a latency EWMA (it
  // seeds to the >=1 floor at latency 0) and the DRR cursor lands on the
  // default tenant's sub-queue.
  ASSERT_EQ(service->Submit("heavy", CodedInput(kHeavy), Deadline::Never())
                .get()
                .status.code(),
            StatusCode::kOk);
  ASSERT_EQ(service->Submit("light", CodedInput(kLight), Deadline::Never())
                .get()
                .status.code(),
            StatusCode::kOk);

  // Wedge the single worker on a default-tenant plug.
  be->CloseGate();
  std::future<InferenceResult> plug =
      service->Submit(CodedInput(kPlug), Deadline::Never());
  ASSERT_TRUE(WaitFor([&] { return be->entered() == 3; }));

  // Flood while wedged: heavy 10 (quota 8), light 5 (quota 4). Total
  // admitted backlog is 12 < 16, so every shed is tenant-quota-bound.
  std::vector<std::future<InferenceResult>> heavy_futures, light_futures;
  for (int i = 0; i < 10; ++i) {
    heavy_futures.push_back(
        service->Submit("heavy", CodedInput(kHeavy), Deadline::Never()));
  }
  for (int i = 0; i < 5; ++i) {
    light_futures.push_back(
        service->Submit("light", CodedInput(kLight), Deadline::Never()));
  }

  // Exactly the overflow sheds, with per-tenant hints: a full quota of N
  // requests at 1 ms each on 1 worker is an N ms wait. Heavy's hint must
  // reflect heavy's backlog (8), light's only its own (4).
  int heavy_ok = 0, light_ok = 0;
  for (auto& f : heavy_futures) {
    InferenceResult r = f.wait_for(std::chrono::seconds(0)) ==
                                std::future_status::ready
                            ? f.get()
                            : InferenceResult{};
    if (r.status.IsResourceExhausted()) {
      EXPECT_EQ(r.retry_after_ms, 8);
      EXPECT_NE(r.status.message().find("tenant heavy quota full"),
                std::string::npos);
    } else {
      ++heavy_ok;  // still pending: admitted
    }
  }
  for (auto& f : light_futures) {
    InferenceResult r = f.wait_for(std::chrono::seconds(0)) ==
                                std::future_status::ready
                            ? f.get()
                            : InferenceResult{};
    if (r.status.IsResourceExhausted()) {
      EXPECT_EQ(r.retry_after_ms, 4);
      EXPECT_NE(r.status.message().find("tenant light quota full"),
                std::string::npos);
    } else {
      ++light_ok;
    }
  }
  EXPECT_EQ(heavy_ok, 8);
  EXPECT_EQ(light_ok, 4);
  EXPECT_FALSE(service->degraded());  // quotas shed before the ladder moves

  // Resume the worker and drain. Every admitted request completes.
  be->OpenGate();
  ASSERT_EQ(plug.get().status.code(), StatusCode::kOk);
  std::vector<std::future<InferenceResult>*> pending;
  for (auto& f : heavy_futures) if (f.valid()) pending.push_back(&f);
  for (auto& f : light_futures) if (f.valid()) pending.push_back(&f);
  for (auto* f : pending) {
    const InferenceResult r = f->get();
    EXPECT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
    EXPECT_FALSE(r.degraded);
  }

  // Deficit round-robin, weights heavy:light = 3:1, max_batch 4, queues
  // H=8 / L=4 at drain start, cursor on heavy: the drain batches are
  // exactly [H,H,H,L], [L,H,H,H], [H,H,L,L]. (The first three batches are
  // the two seeds and the plug.)
  const auto batches = be->batches();
  ASSERT_EQ(batches.size(), 6u);
  EXPECT_EQ(batches[0], std::vector<int>({kHeavy}));
  EXPECT_EQ(batches[1], std::vector<int>({kLight}));
  EXPECT_EQ(batches[2], std::vector<int>({kPlug}));
  EXPECT_EQ(batches[3], std::vector<int>({kHeavy, kHeavy, kHeavy, kLight}));
  EXPECT_EQ(batches[4], std::vector<int>({kLight, kHeavy, kHeavy, kHeavy}));
  EXPECT_EQ(batches[5], std::vector<int>({kHeavy, kHeavy, kLight, kLight}));

  // Per-tenant conservation: submitted == admitted + shed, and every
  // admitted request completed full-quality. No starvation anywhere.
  const ServeStats stats = service->Stats();
  const TenantStats* heavy = FindTenant(stats, "heavy");
  const TenantStats* light = FindTenant(stats, "light");
  const TenantStats* dflt = FindTenant(stats, kDefaultTenant);
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  ASSERT_NE(dflt, nullptr);
  EXPECT_EQ(heavy->submitted, 11u);
  EXPECT_EQ(heavy->admitted, 9u);
  EXPECT_EQ(heavy->shed, 2u);
  EXPECT_EQ(heavy->completed, 9u);
  EXPECT_EQ(light->submitted, 6u);
  EXPECT_EQ(light->admitted, 5u);
  EXPECT_EQ(light->shed, 1u);
  EXPECT_EQ(light->completed, 5u);
  EXPECT_EQ(dflt->submitted, 1u);
  EXPECT_EQ(dflt->completed, 1u);
  EXPECT_EQ(heavy->deadline_exceeded + light->deadline_exceeded +
                dflt->deadline_exceeded,
            0u);
  EXPECT_EQ(heavy->cancelled + light->cancelled + dflt->cancelled, 0u);
  EXPECT_EQ(stats.watchdog_trips, 0u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed);

  service->Stop();
}

// Hot swap under sustained mixed-tenant load: promotions (including
// sentinel rejections) flip the registry while batches are in flight, and
// not one request is dropped, cancelled, or deadline-exceeded — each batch
// finishes on the version it pinned.
TEST_F(TenantFairnessTest, PromotionUnderLoadDropsNothing) {
  auto registry_or = ModelRegistry::Create(
      MakeDenseBackend(SmallNet(1)),
      [](Mlp model) -> StatusOr<std::shared_ptr<ModelBackend>> {
        return std::shared_ptr<ModelBackend>(
            MakeDenseBackend(std::move(model)));
      },
      {});
  ASSERT_TRUE(registry_or.ok());
  std::shared_ptr<ModelRegistry> registry = std::move(registry_or).value();

  ServeOptions options;
  options.workers = 2;
  options.max_batch = 4;
  options.queue_capacity = 512;
  options.degrade_above_fraction = 1.0;
  options.recover_below_fraction = 0.25;
  options.tenants = {{"heavy", 256, 3}, {"light", 256, 1}};
  auto service = std::move(InferenceService::Create(registry, options))
                     .ValueOrDie("service");

  CanaryBatch canary;
  canary.inputs = Matrix(2, 4);
  for (size_t c = 0; c < 4; ++c) {
    canary.inputs(0, c) = 0.1f * static_cast<float>(c + 1);
    canary.inputs(1, c) = 0.2f * static_cast<float>(c + 1);
  }
  canary.labels = {0, 1};

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(300);
  const auto feed = [&](const char* tenant, int code, int count) {
    for (int i = 0; i < count; ++i) {
      futures.push_back(
          service->Submit(tenant, CodedInput(code), Deadline::Never()));
    }
  };

  // Interleave traffic with promotions and one rollback. Rejections (a
  // poisoned candidate) must leave traffic untouched too.
  feed("heavy", kHeavy, 60);
  feed("light", kLight, 40);
  ASSERT_TRUE(registry->Promote(SmallNet(2), {}, canary).ok());
  feed("heavy", kHeavy, 60);
  Mlp poisoned = SmallNet(3);
  // Output layer: the NaN must reach the logits (ReLU squashes hidden NaNs).
  poisoned.layer(poisoned.num_layers() - 1).weights()(0, 0) =
      std::numeric_limits<float>::quiet_NaN();
  ASSERT_TRUE(registry->Promote(std::move(poisoned), {}, canary)
                  .status()
                  .IsFailedPrecondition());
  feed("light", kLight, 40);
  ASSERT_TRUE(registry->Promote(SmallNet(4), {}, canary).ok());
  feed("heavy", kHeavy, 50);
  ASSERT_TRUE(registry->Rollback(2).ok());
  feed("light", kLight, 50);

  uint64_t min_version = UINT64_MAX, max_version = 0;
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    ASSERT_EQ(r.status.code(), StatusCode::kOk) << r.status.ToString();
    min_version = std::min(min_version, r.model_version);
    max_version = std::max(max_version, r.model_version);
  }
  // Every request served by a real retained version; at least the boot
  // version saw traffic (the first 100 futures were admitted before any
  // promotion could flip — some may still have been *served* later, but
  // min can never exceed the versions that existed).
  EXPECT_GE(min_version, 1u);
  EXPECT_LE(max_version, 3u);
  EXPECT_EQ(registry->live_version(), 2u);  // post-rollback

  const ServeStats stats = service->Stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.completed + stats.completed_degraded, 300u);
  EXPECT_EQ(registry->stats().promoted, 2u);
  EXPECT_EQ(registry->stats().rejected_regressed, 1u);
  EXPECT_EQ(registry->stats().rollbacks, 1u);
  service->Stop();
}

}  // namespace
}  // namespace sampnn
