#include "src/core/error_propagation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(TheoreticalErrorRatioTest, MatchesPaperTableForCEquals5) {
  // The §7 in-text table: k = 1..6 at c = 5 -> 0.2, 0.44, 0.72, 1.07, 1.48,
  // 1.98 (rounded to two decimals).
  // (exact values 0.2, 0.44, 0.728, 1.0736, 1.4883, 1.986 — the paper
  // truncates to two decimals, so compare at 0.01 tolerance)
  const double expected[] = {0.2, 0.44, 0.72, 1.07, 1.48, 1.98};
  for (size_t k = 1; k <= 6; ++k) {
    EXPECT_NEAR(TheoreticalErrorRatio(5.0, k), expected[k - 1], 0.01)
        << "k=" << k;
  }
}

TEST(TheoreticalErrorRatioTest, ZeroAtDepthZero) {
  EXPECT_DOUBLE_EQ(TheoreticalErrorRatio(5.0, 0), 0.0);
}

TEST(TheoreticalErrorRatioTest, GrowsExponentially) {
  // e(k+1)/e(k) approaches (c+1)/c for large k.
  const double c = 5.0;
  double prev = TheoreticalErrorRatio(c, 10);
  const double cur = TheoreticalErrorRatio(c, 11);
  EXPECT_NEAR(cur / prev, (c + 1.0) / c, 0.05);
}

TEST(TheoreticalErrorRatioTest, LargerCMeansSmallerError) {
  // More weight captured by the active set (larger c) shrinks the error.
  EXPECT_LT(TheoreticalErrorRatio(20.0, 3), TheoreticalErrorRatio(5.0, 3));
  EXPECT_LT(TheoreticalErrorRatio(5.0, 3), TheoreticalErrorRatio(2.0, 3));
}

TEST(TheoreticalErrorTableTest, SizesAndMonotonicity) {
  const auto table = TheoreticalErrorTable(5.0, 7);
  ASSERT_EQ(table.size(), 7u);
  for (size_t i = 1; i < table.size(); ++i) {
    EXPECT_GT(table[i], table[i - 1]);
  }
  // Error exceeds the estimate itself past k = 3 (the paper's "deeper than
  // 3 layers" threshold).
  EXPECT_LT(table[2], 1.0);
  EXPECT_GT(table[3], 1.0);
}

class ErrorPropagationMeasureTest : public ::testing::Test {
 protected:
  static Mlp LinearNet(size_t depth, size_t width = 64) {
    MlpConfig cfg = MlpConfig::Uniform(width, 4, depth, width);
    cfg.hidden_activation = Activation::kLinear;
    cfg.initializer = Initializer::kXavier;
    cfg.seed = 42;
    return std::move(Mlp::Create(cfg)).value();
  }

  static Matrix Inputs(size_t n, size_t dim) {
    Rng rng(7);
    return Matrix::RandomUniform(n, dim, rng, 0.0f, 1.0f);
  }
};

TEST_F(ErrorPropagationMeasureTest, ValidatesArguments) {
  Mlp net = LinearNet(3);
  ErrorPropagationOptions options;
  Matrix empty;
  EXPECT_TRUE(
      MeasureErrorPropagation(net, empty, options).status().IsInvalidArgument());
  Matrix wrong_dim(2, 5);
  EXPECT_TRUE(MeasureErrorPropagation(net, wrong_dim, options)
                  .status()
                  .IsInvalidArgument());
  options.active_fraction = 0.0;
  EXPECT_TRUE(MeasureErrorPropagation(net, Inputs(2, 64), options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ErrorPropagationMeasureTest, OneStatPerHiddenLayer) {
  Mlp net = LinearNet(4);
  ErrorPropagationOptions options;
  auto stats = MeasureErrorPropagation(net, Inputs(8, 64), options);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 4u);
  for (size_t k = 0; k < 4; ++k) EXPECT_EQ((*stats)[k].layer, k + 1);
}

TEST_F(ErrorPropagationMeasureTest, ErrorRatioGrowsWithDepthOracle) {
  // The empirical counterpart of Theorem 7.2: deeper layers accumulate
  // relatively more error under truncated forward passes.
  Mlp net = LinearNet(5);
  ErrorPropagationOptions options;
  options.selection = ActiveSelection::kOracleTopFraction;
  options.active_fraction = 0.05;
  auto stats =
      std::move(MeasureErrorPropagation(net, Inputs(16, 64), options)).value();
  EXPECT_GT(stats.back().error_ratio, stats.front().error_ratio);
  // And the growth is substantial, not incidental.
  EXPECT_GT(stats.back().error_ratio, 2.0 * stats.front().error_ratio);
}

TEST_F(ErrorPropagationMeasureTest, ErrorRatioGrowsWithDepthAlsh) {
  Mlp net = LinearNet(5);
  ErrorPropagationOptions options;
  options.selection = ActiveSelection::kAlsh;
  auto stats =
      std::move(MeasureErrorPropagation(net, Inputs(16, 64), options)).value();
  EXPECT_GT(stats.back().error_ratio, stats.front().error_ratio);
}

TEST_F(ErrorPropagationMeasureTest, KeepingEverythingGivesZeroError) {
  Mlp net = LinearNet(3);
  ErrorPropagationOptions options;
  options.active_fraction = 1.0;
  auto stats =
      std::move(MeasureErrorPropagation(net, Inputs(4, 64), options)).value();
  for (const auto& s : stats) {
    EXPECT_NEAR(s.mean_abs_error, 0.0, 1e-5);
    EXPECT_NEAR(s.error_ratio, 0.0, 1e-4);
  }
}

TEST_F(ErrorPropagationMeasureTest, LargerActiveFractionSmallerError) {
  Mlp net = LinearNet(3);
  ErrorPropagationOptions sparse;
  sparse.active_fraction = 0.05;
  ErrorPropagationOptions dense;
  dense.active_fraction = 0.5;
  auto sparse_stats =
      std::move(MeasureErrorPropagation(net, Inputs(8, 64), sparse)).value();
  auto dense_stats =
      std::move(MeasureErrorPropagation(net, Inputs(8, 64), dense)).value();
  for (size_t k = 0; k < sparse_stats.size(); ++k) {
    EXPECT_GE(sparse_stats[k].error_ratio, dense_stats[k].error_ratio);
  }
}

}  // namespace
}  // namespace sampnn
