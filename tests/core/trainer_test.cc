#include "src/core/trainer.h"

#include <gtest/gtest.h>

namespace sampnn {
namespace {

MlpConfig SmallNet() {
  MlpConfig cfg = MlpConfig::Uniform(8, 3, 2, 12);
  cfg.seed = 42;
  return cfg;
}

TEST(TrainerKindTest, ParseRoundTrips) {
  for (TrainerKind kind :
       {TrainerKind::kStandard, TrainerKind::kDropout,
        TrainerKind::kAdaptiveDropout, TrainerKind::kAlsh, TrainerKind::kMc}) {
    auto parsed = TrainerKindFromString(TrainerKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_TRUE(TrainerKindFromString("sgd").status().IsInvalidArgument());
}

TEST(MakeTrainerTest, BuildsEveryKind) {
  for (TrainerKind kind :
       {TrainerKind::kStandard, TrainerKind::kDropout,
        TrainerKind::kAdaptiveDropout, TrainerKind::kAlsh, TrainerKind::kMc}) {
    TrainerOptions options;
    options.kind = kind;
    auto trainer = MakeTrainer(SmallNet(), options);
    ASSERT_TRUE(trainer.ok()) << TrainerKindToString(kind);
    EXPECT_STREQ((*trainer)->name(), TrainerKindToString(kind));
    EXPECT_EQ((*trainer)->net().input_dim(), 8u);
  }
}

TEST(MakeTrainerTest, RejectsBadNetwork) {
  MlpConfig bad = SmallNet();
  bad.input_dim = 0;
  TrainerOptions options;
  EXPECT_TRUE(MakeTrainer(bad, options).status().IsInvalidArgument());
}

TEST(MakeTrainerTest, RejectsBadLearningRate) {
  TrainerOptions options;
  options.learning_rate = 0.0f;
  EXPECT_FALSE(MakeTrainer(SmallNet(), options).ok());
  options.kind = TrainerKind::kAlsh;
  EXPECT_FALSE(MakeTrainer(SmallNet(), options).ok());
}

TEST(MakeTrainerTest, RejectsBadDropoutProb) {
  TrainerOptions options;
  options.kind = TrainerKind::kDropout;
  options.dropout.keep_prob = 0.0f;
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
  options.dropout.keep_prob = 1.5f;
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
}

TEST(MakeTrainerTest, RejectsBadAdaptiveTargetProb) {
  TrainerOptions options;
  options.kind = TrainerKind::kAdaptiveDropout;
  options.adaptive_dropout.target_prob = 1.0f;
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
}

TEST(MakeTrainerTest, RejectsBadMcOptions) {
  TrainerOptions options;
  options.kind = TrainerKind::kMc;
  options.mc.grad_batch_samples = 0;
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
  options = TrainerOptions();
  options.kind = TrainerKind::kMc;
  options.mc.delta_sample_ratio = 0.0;
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
}

TEST(MakeTrainerTest, RejectsBadAlshOptions) {
  TrainerOptions options;
  options.kind = TrainerKind::kAlsh;
  options.alsh.early_rebuild_every = 0;
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
  options = TrainerOptions();
  options.kind = TrainerKind::kAlsh;
  options.alsh.optimizer = "lbfgs";
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
}

TEST(MakeTrainerTest, RejectsUnknownOptimizer) {
  TrainerOptions options;
  options.optimizer = "newton";
  EXPECT_TRUE(MakeTrainer(SmallNet(), options).status().IsInvalidArgument());
}

TEST(TrainerStepTest, ValidatesBatchShapes) {
  TrainerOptions options;
  options.kind = TrainerKind::kAlsh;
  auto trainer = std::move(MakeTrainer(SmallNet(), options)).value();
  Matrix x(2, 8);
  std::vector<int32_t> wrong_labels{0};  // batch mismatch
  EXPECT_FALSE(trainer->Step(x, wrong_labels).ok());
  Matrix wrong_dim(1, 5);
  std::vector<int32_t> labels{0};
  EXPECT_FALSE(trainer->Step(wrong_dim, labels).ok());
}

}  // namespace
}  // namespace sampnn
