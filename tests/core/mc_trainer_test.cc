#include "src/core/mc_trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/standard_trainer.h"
#include "tests/core/test_util.h"

namespace sampnn {
namespace {

using testing_util::EasyDataset;
using testing_util::EasyNet;
using testing_util::TrainEpochs;

std::unique_ptr<Trainer> MakeMc(const MlpConfig& net, McOptions mc = {},
                                float lr = 1e-3f) {
  TrainerOptions options;
  options.kind = TrainerKind::kMc;
  options.mc = mc;
  options.learning_rate = lr;
  return std::move(MakeTrainer(net, options)).value();
}

TEST(McTrainerTest, CreateValidatesOptions) {
  Mlp net = std::move(Mlp::Create(EasyNet(EasyDataset(10)))).value();
  auto opt = std::move(MakeOptimizer("adam", 1e-3f)).value();
  McOptions bad;
  bad.grad_batch_samples = 0;
  EXPECT_TRUE(McTrainer::Create(net.Clone(), std::move(opt), bad, 1)
                  .status()
                  .IsInvalidArgument());
  auto opt2 = std::move(MakeOptimizer("adam", 1e-3f)).value();
  McOptions bad_ratio;
  bad_ratio.delta_sample_ratio = 1.5;
  EXPECT_TRUE(McTrainer::Create(net.Clone(), std::move(opt2), bad_ratio, 1)
                  .status()
                  .IsInvalidArgument());
  McOptions ok;
  EXPECT_TRUE(
      McTrainer::Create(net.Clone(), nullptr, ok, 1).status().IsInvalidArgument());
}

// The strongest MC correctness check: with k >= batch and ratio = 1 every
// sampled product short-circuits to the exact gemm, so MC training must be
// bit-for-bit identical to standard training from the same seed.
TEST(McTrainerTest, ExactConfigurationMatchesStandardExactly) {
  Dataset data = EasyDataset(200);
  const MlpConfig net_config = EasyNet(data);

  McOptions exact;
  exact.grad_batch_samples = 1000;  // >= any batch
  exact.delta_sample_ratio = 1.0;
  exact.delta_min_samples = 100000;
  auto mc = MakeMc(net_config, exact);

  TrainerOptions std_options;
  auto standard = std::move(MakeTrainer(net_config, std_options)).value();

  TrainEpochs(mc.get(), data, 16, 2, nullptr, nullptr);
  TrainEpochs(standard.get(), data, 16, 2, nullptr, nullptr);
  for (size_t k = 0; k < mc->net().num_layers(); ++k) {
    EXPECT_TRUE(mc->net().layer(k).weights().AllClose(
        standard->net().layer(k).weights(), 1e-6f))
        << "layer " << k;
  }
}

TEST(McTrainerTest, LearnsAtPaperDefaults) {
  Dataset data = EasyDataset(400);
  McOptions mc;  // k = 10, ratio 0.1, min 64
  auto trainer = MakeMc(EasyNet(data, 2, 64), mc);
  const double acc = TrainEpochs(trainer.get(), data, 20, 8, nullptr, nullptr);
  EXPECT_GT(acc, 0.85);
}

TEST(McTrainerTest, LossDecreases) {
  Dataset data = EasyDataset(300);
  auto trainer = MakeMc(EasyNet(data, 2, 64));
  double first = 0.0, last = 0.0;
  TrainEpochs(trainer.get(), data, 20, 6, &first, &last);
  EXPECT_LT(last, first * 0.8);
}

TEST(McTrainerTest, DeltaMinSamplesFloorsTheSampler) {
  // With a tiny ratio but a large floor, training must still work: the
  // floor keeps the absolute sample count at paper-equivalent levels.
  Dataset data = EasyDataset(300);
  McOptions mc;
  mc.delta_sample_ratio = 0.01;
  mc.delta_min_samples = 48;
  auto trainer = MakeMc(EasyNet(data, 2, 64), mc);
  const double acc = TrainEpochs(trainer.get(), data, 20, 8, nullptr, nullptr);
  EXPECT_GT(acc, 0.7);
}

TEST(McTrainerTest, StochasticSettingRuns) {
  // MC^S: batch = 1 — probabilities from singleton columns; must still make
  // progress (the paper's point is that it is slow, not broken).
  Dataset data = EasyDataset(150);
  McOptions mc;
  auto trainer = MakeMc(EasyNet(data, 2, 32), mc, 1e-4f);
  double first = 0.0, last = 0.0;
  TrainEpochs(trainer.get(), data, 1, 4, &first, &last);
  EXPECT_LT(last, first);
}

TEST(McTrainerTest, ForwardIsExactByDefault) {
  // The default MC configuration performs the forward pass exactly, so two
  // nets with identical weights produce identical logits regardless of the
  // trainer's internal rng state.
  Dataset data = EasyDataset(50);
  auto trainer = MakeMc(EasyNet(data));
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx{0, 1, 2, 3};
  data.FillBatch(idx, &x, &y);
  MlpWorkspace ws;
  const Matrix& before = trainer->net().Forward(x, &ws);
  Matrix logits_copy = before;
  MlpWorkspace ws2;
  const Matrix& again = trainer->net().Forward(x, &ws2);
  EXPECT_TRUE(again.AllClose(logits_copy, 0.0f));
}

TEST(McTrainerTest, ApproxForwardAblationRunsAndDegrades) {
  Dataset data = EasyDataset(300);
  McOptions approx_fwd;
  approx_fwd.approx_forward = true;
  approx_fwd.forward_samples = 8;  // aggressive truncation
  auto ablation = MakeMc(EasyNet(data, 2, 64), approx_fwd);
  auto normal = MakeMc(EasyNet(data, 2, 64));
  const double acc_ablation =
      TrainEpochs(ablation.get(), data, 20, 4, nullptr, nullptr);
  const double acc_normal =
      TrainEpochs(normal.get(), data, 20, 4, nullptr, nullptr);
  // The paper reports feedforward approximation failing; at minimum it must
  // not beat the backward-only configuration.
  EXPECT_LE(acc_ablation, acc_normal + 0.05);
}

TEST(McTrainerTest, ChargesBothPhases) {
  Dataset data = EasyDataset(100);
  auto trainer = MakeMc(EasyNet(data));
  TrainEpochs(trainer.get(), data, 20, 1, nullptr, nullptr);
  EXPECT_GT(trainer->timer().Seconds(kPhaseForward), 0.0);
  EXPECT_GT(trainer->timer().Seconds(kPhaseBackward), 0.0);
}

}  // namespace
}  // namespace sampnn
