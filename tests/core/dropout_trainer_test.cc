#include "src/core/dropout_trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/core/test_util.h"

namespace sampnn {
namespace {

using testing_util::EasyDataset;
using testing_util::EasyNet;
using testing_util::TrainEpochs;

std::unique_ptr<Trainer> MakeDropout(const MlpConfig& net, float keep_prob) {
  TrainerOptions options;
  options.kind = TrainerKind::kDropout;
  options.dropout.keep_prob = keep_prob;
  return std::move(MakeTrainer(net, options)).value();
}

std::unique_ptr<Trainer> MakeAdaptive(const MlpConfig& net,
                                      float target_prob) {
  TrainerOptions options;
  options.kind = TrainerKind::kAdaptiveDropout;
  options.adaptive_dropout.target_prob = target_prob;
  return std::move(MakeTrainer(net, options)).value();
}

TEST(DropoutTrainerTest, KeepAllBehavesLikeStandardTraining) {
  Dataset data = EasyDataset();
  auto dropout = MakeDropout(EasyNet(data), 1.0f);
  TrainerOptions std_options;
  auto standard = std::move(MakeTrainer(EasyNet(data), std_options)).value();
  TrainEpochs(dropout.get(), data, 16, 2, nullptr, nullptr);
  TrainEpochs(standard.get(), data, 16, 2, nullptr, nullptr);
  // keep_prob = 1 makes every mask all-ones with unit scale: identical math.
  for (size_t k = 0; k < dropout->net().num_layers(); ++k) {
    EXPECT_TRUE(dropout->net().layer(k).weights().AllClose(
        standard->net().layer(k).weights(), 1e-5f));
  }
}

TEST(DropoutTrainerTest, LearnsWithModerateKeepProb) {
  Dataset data = EasyDataset();
  auto trainer = MakeDropout(EasyNet(data, 2, 64), 0.5f);
  const double acc = TrainEpochs(trainer.get(), data, 16, 8, nullptr, nullptr);
  EXPECT_GT(acc, 0.8);
}

TEST(DropoutTrainerTest, AggressiveKeepProbDegradesLearning) {
  // The paper's p = 0.05 setting cripples Dropout (Table 2) — verify the
  // qualitative effect: much worse than moderate keep at equal budget.
  Dataset data = EasyDataset();
  auto aggressive = MakeDropout(EasyNet(data, 2, 64), 0.05f);
  auto moderate = MakeDropout(EasyNet(data, 2, 64), 0.5f);
  const double acc_aggressive =
      TrainEpochs(aggressive.get(), data, 16, 4, nullptr, nullptr);
  const double acc_moderate =
      TrainEpochs(moderate.get(), data, 16, 4, nullptr, nullptr);
  EXPECT_GT(acc_moderate, acc_aggressive + 0.1);
}

TEST(DropoutTrainerTest, LossDecreases) {
  Dataset data = EasyDataset();
  auto trainer = MakeDropout(EasyNet(data, 2, 64), 0.5f);
  double first = 0.0, last = 0.0;
  TrainEpochs(trainer.get(), data, 16, 6, &first, &last);
  EXPECT_LT(last, first);
}

TEST(DropoutTrainerTest, ChargesBothPhases) {
  Dataset data = EasyDataset(100);
  auto trainer = MakeDropout(EasyNet(data), 0.5f);
  TrainEpochs(trainer.get(), data, 10, 1, nullptr, nullptr);
  EXPECT_GT(trainer->timer().Seconds(kPhaseForward), 0.0);
  EXPECT_GT(trainer->timer().Seconds(kPhaseBackward), 0.0);
}

TEST(AdaptiveDropoutTrainerTest, LearnsAtPaperTargetProb) {
  // Standout's data-dependent masks keep important units alive, so unlike
  // plain Dropout it must learn even at the paper's p = 0.05.
  Dataset data = EasyDataset();
  auto trainer = MakeAdaptive(EasyNet(data, 2, 64), 0.05f);
  const double acc = TrainEpochs(trainer.get(), data, 16, 8, nullptr, nullptr);
  EXPECT_GT(acc, 0.7);
}

TEST(AdaptiveDropoutTrainerTest, BeatsPlainDropoutAtEqualBudget) {
  Dataset data = EasyDataset();
  auto adaptive = MakeAdaptive(EasyNet(data, 2, 64), 0.05f);
  auto dropout = MakeDropout(EasyNet(data, 2, 64), 0.05f);
  const double acc_adaptive =
      TrainEpochs(adaptive.get(), data, 16, 5, nullptr, nullptr);
  const double acc_dropout =
      TrainEpochs(dropout.get(), data, 16, 5, nullptr, nullptr);
  EXPECT_GT(acc_adaptive, acc_dropout);
}

TEST(AdaptiveDropoutTrainerTest, StochasticSettingWorks) {
  Dataset data = EasyDataset(150);
  auto trainer = MakeAdaptive(EasyNet(data, 2, 48), 0.05f);
  double first = 0.0, last = 0.0;
  TrainEpochs(trainer.get(), data, 1, 4, &first, &last);
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace sampnn
