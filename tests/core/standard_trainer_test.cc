#include "src/core/standard_trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/core/test_util.h"

namespace sampnn {
namespace {

using testing_util::EasyDataset;
using testing_util::EasyNet;
using testing_util::TrainEpochs;

std::unique_ptr<Trainer> MakeStandard(const MlpConfig& net, float lr = 1e-3f,
                                      const std::string& opt = "adam") {
  TrainerOptions options;
  options.kind = TrainerKind::kStandard;
  options.optimizer = opt;
  options.learning_rate = lr;
  return std::move(MakeTrainer(net, options)).value();
}

TEST(StandardTrainerTest, LossDecreasesOverEpochs) {
  Dataset data = EasyDataset();
  auto trainer = MakeStandard(EasyNet(data));
  double first = 0.0, last = 0.0;
  TrainEpochs(trainer.get(), data, 16, 5, &first, &last);
  EXPECT_LT(last, first * 0.5);
}

TEST(StandardTrainerTest, LearnsEasyProblem) {
  Dataset data = EasyDataset();
  auto trainer = MakeStandard(EasyNet(data));
  const double acc = TrainEpochs(trainer.get(), data, 16, 6, nullptr, nullptr);
  EXPECT_GT(acc, 0.9);
}

TEST(StandardTrainerTest, WorksInStochasticSetting) {
  Dataset data = EasyDataset(200);
  auto trainer = MakeStandard(EasyNet(data));
  const double acc = TrainEpochs(trainer.get(), data, 1, 3, nullptr, nullptr);
  EXPECT_GT(acc, 0.8);
}

TEST(StandardTrainerTest, ChargesForwardAndBackwardPhases) {
  Dataset data = EasyDataset(100);
  // Backprop (incl. the update) costs more than the forward pass — the
  // §10.1 observation. The intervals here are a few milliseconds, so a
  // single preemption on a loaded machine (or under sanitizers) can flip
  // the comparison; retry with a fresh trainer before declaring failure.
  double forward = 0.0;
  double backward = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto trainer = MakeStandard(EasyNet(data));
    TrainEpochs(trainer.get(), data, 10, 1, nullptr, nullptr);
    forward = trainer->timer().Seconds(kPhaseForward);
    backward = trainer->timer().Seconds(kPhaseBackward);
    ASSERT_GT(forward, 0.0);
    ASSERT_GT(backward, 0.0);
    if (backward > forward) break;
  }
  EXPECT_GT(backward, forward);
}

TEST(StandardTrainerTest, StepReturnsBatchLoss) {
  Dataset data = EasyDataset(50);
  auto trainer = MakeStandard(EasyNet(data));
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx{0, 1, 2};
  data.FillBatch(idx, &x, &y);
  auto loss = trainer->Step(x, y);
  ASSERT_TRUE(loss.ok());
  // Untrained multi-class model: loss near log(num_classes).
  EXPECT_NEAR(loss.value(), std::log(4.0), 1.0);
}

TEST(StandardTrainerTest, DeterministicGivenSeeds) {
  Dataset data = EasyDataset(100);
  auto t1 = MakeStandard(EasyNet(data));
  auto t2 = MakeStandard(EasyNet(data));
  TrainEpochs(t1.get(), data, 10, 2, nullptr, nullptr);
  TrainEpochs(t2.get(), data, 10, 2, nullptr, nullptr);
  for (size_t k = 0; k < t1->net().num_layers(); ++k) {
    EXPECT_TRUE(t1->net().layer(k).weights().AllClose(
        t2->net().layer(k).weights(), 0.0f));
  }
}

}  // namespace
}  // namespace sampnn
