#include "src/core/method_selector.h"

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(MethodSelectorTest, MiniBatchAlwaysPicksMc) {
  for (size_t batch : {2u, 20u, 128u}) {
    for (size_t depth : {1u, 3u, 10u}) {
      for (bool parallel : {false, true}) {
        TrainingScenario s{batch, depth, parallel};
        EXPECT_EQ(RecommendMethod(s).method, TrainerKind::kMc)
            << "batch=" << batch << " depth=" << depth;
      }
    }
  }
}

TEST(MethodSelectorTest, StochasticShallowParallelPicksAlsh) {
  TrainingScenario s{1, 3, true};
  EXPECT_EQ(RecommendMethod(s).method, TrainerKind::kAlsh);
  TrainingScenario s4{1, 4, true};
  EXPECT_EQ(RecommendMethod(s4).method, TrainerKind::kAlsh);
}

TEST(MethodSelectorTest, StochasticShallowSerialPicksAdaptiveDropout) {
  TrainingScenario s{1, 2, false};
  EXPECT_EQ(RecommendMethod(s).method, TrainerKind::kAdaptiveDropout);
}

TEST(MethodSelectorTest, StochasticDeepPicksStandardRegardlessOfParallelism) {
  // Past the ~4-layer threshold ALSH's error compounds (Theorem 7.2).
  TrainingScenario deep_parallel{1, 5, true};
  EXPECT_EQ(RecommendMethod(deep_parallel).method, TrainerKind::kStandard);
  TrainingScenario deep_serial{1, 7, false};
  EXPECT_EQ(RecommendMethod(deep_serial).method, TrainerKind::kStandard);
}

TEST(MethodSelectorTest, RationaleIsNonEmptyAndCitesEvidence) {
  for (const TrainingScenario& s :
       {TrainingScenario{20, 3, false}, TrainingScenario{1, 2, true},
        TrainingScenario{1, 2, false}, TrainingScenario{1, 8, true}}) {
    const auto rec = RecommendMethod(s);
    EXPECT_FALSE(rec.rationale.empty());
  }
}

}  // namespace
}  // namespace sampnn
