// Shared fixtures for the trainer tests: a small, clearly learnable
// synthetic classification problem and a helper that runs a trainer over it.

#pragma once

#include <vector>

#include "src/core/trainer.h"
#include "src/data/batcher.h"
#include "src/data/synthetic.h"
#include "src/metrics/accuracy.h"

namespace sampnn::testing_util {

/// A small easy dataset: 10x10 images, `classes` well-separated classes.
inline Dataset EasyDataset(size_t examples = 400, size_t classes = 4,
                           uint64_t seed = 21) {
  SyntheticSpec spec;
  spec.name = "easy";
  spec.image_height = 10;
  spec.image_width = 10;
  spec.num_classes = classes;
  spec.num_examples = examples;
  spec.prototypes_per_class = 1;
  spec.noise_stddev = 0.05f;
  spec.shared_structure = 0.1f;
  spec.max_shift = 1;
  return GenerateSynthetic(spec, seed);
}

/// Matching network config.
inline MlpConfig EasyNet(const Dataset& data, size_t depth = 2,
                         size_t width = 32, uint64_t seed = 42) {
  MlpConfig cfg =
      MlpConfig::Uniform(data.dim(), data.num_classes(), depth, width);
  cfg.seed = seed;
  return cfg;
}

/// Runs `epochs` epochs of training; returns the mean loss of the first and
/// last epoch through `first`/`last` and the final train accuracy.
inline double TrainEpochs(Trainer* trainer, const Dataset& data,
                          size_t batch_size, size_t epochs, double* first,
                          double* last) {
  Batcher batcher(data, batch_size, 7);
  Matrix x;
  std::vector<int32_t> y;
  for (size_t e = 0; e < epochs; ++e) {
    double sum = 0.0;
    size_t n = 0;
    while (batcher.Next(&x, &y)) {
      sum += std::move(trainer->Step(x, y)).ValueOrDie("step");
      ++n;
    }
    const double mean = sum / static_cast<double>(n);
    if (e == 0 && first != nullptr) *first = mean;
    if (e + 1 == epochs && last != nullptr) *last = mean;
  }
  return EvaluateAccuracy(trainer->net(), data);
}

}  // namespace sampnn::testing_util
