#include "src/core/alsh_trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/core/test_util.h"

namespace sampnn {
namespace {

using testing_util::EasyDataset;
using testing_util::EasyNet;
using testing_util::TrainEpochs;

std::unique_ptr<AlshTrainer> MakeAlsh(const MlpConfig& net_config,
                                      AlshOptions options = {},
                                      float lr = 1e-3f) {
  Mlp net = std::move(Mlp::Create(net_config)).value();
  return std::move(AlshTrainer::Create(std::move(net), options, lr, 42))
      .value();
}

TEST(SparseOptStateTest, CreateValidatesMode) {
  Rng rng(1);
  Layer layer(4, 3, Activation::kRelu, Initializer::kHe, rng);
  EXPECT_TRUE(SparseOptState::Create(layer, "sgd").ok());
  EXPECT_TRUE(SparseOptState::Create(layer, "adagrad").ok());
  EXPECT_TRUE(SparseOptState::Create(layer, "adam").ok());
  EXPECT_TRUE(SparseOptState::Create(layer, "rprop").status().IsInvalidArgument());
}

TEST(SparseOptStateTest, SgdUpdateMatchesManualMath) {
  Rng rng(2);
  Layer layer(3, 2, Activation::kRelu, Initializer::kHe, rng);
  Matrix w_before = layer.weights();
  auto state = std::move(SparseOptState::Create(layer, "sgd")).value();
  std::vector<float> a_prev{1.0f, 2.0f, 0.0f};
  std::vector<uint32_t> support{0, 1};
  state.UpdateColumn(&layer.weights(), layer.bias(), 1, a_prev, support,
                     0.5f, 0.1f);
  EXPECT_NEAR(layer.weights()(0, 1), w_before(0, 1) - 0.1f * 0.5f * 1.0f, 1e-6f);
  EXPECT_NEAR(layer.weights()(1, 1), w_before(1, 1) - 0.1f * 0.5f * 2.0f, 1e-6f);
  EXPECT_EQ(layer.weights()(2, 1), w_before(2, 1));  // outside support
  EXPECT_EQ(layer.weights()(0, 0), w_before(0, 0));  // other column untouched
  EXPECT_NEAR(layer.bias()[1], -0.05f, 1e-6f);
}

TEST(SparseOptStateTest, AdagradShrinksSteps) {
  Rng rng(3);
  Layer layer(2, 1, Activation::kRelu, Initializer::kHe, rng);
  auto state = std::move(SparseOptState::Create(layer, "adagrad")).value();
  std::vector<float> a_prev{1.0f, 0.0f};
  std::vector<uint32_t> support{0};
  const float w0 = layer.weights()(0, 0);
  state.UpdateColumn(&layer.weights(), layer.bias(), 0, a_prev, support, 1.0f,
                     0.1f);
  const float step1 = w0 - layer.weights()(0, 0);
  const float w1 = layer.weights()(0, 0);
  state.UpdateColumn(&layer.weights(), layer.bias(), 0, a_prev, support, 1.0f,
                     0.1f);
  const float step2 = w1 - layer.weights()(0, 0);
  EXPECT_GT(step1, step2);
}

TEST(SparseOptStateTest, AdamAdvancesColumnStepLazily) {
  Rng rng(4);
  Layer layer(2, 3, Activation::kRelu, Initializer::kHe, rng);
  auto state = std::move(SparseOptState::Create(layer, "adam")).value();
  std::vector<float> a_prev{1.0f, 1.0f};
  std::vector<uint32_t> support{0, 1};
  state.UpdateColumn(&layer.weights(), layer.bias(), 1, a_prev, support, 1.0f,
                     0.01f);
  state.UpdateColumn(&layer.weights(), layer.bias(), 1, a_prev, support, 1.0f,
                     0.01f);
  EXPECT_EQ(state.col_step[1], 2u);
  EXPECT_EQ(state.col_step[0], 0u);  // never touched
  EXPECT_EQ(state.col_step[2], 0u);
}

TEST(AlshTrainerTest, CreateValidates) {
  Mlp net = std::move(Mlp::Create(EasyNet(EasyDataset(10)))).value();
  AlshOptions options;
  EXPECT_TRUE(
      AlshTrainer::Create(net.Clone(), options, 0.0f, 1).status().IsInvalidArgument());
  options.late_rebuild_every = 0;
  EXPECT_TRUE(AlshTrainer::Create(net.Clone(), options, 0.1f, 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(AlshTrainerTest, FullActiveSetMatchesExactTrainingQuality) {
  // Forcing every node active removes the approximation; the sparse
  // machinery must then learn the easy problem as well as dense training.
  Dataset data = EasyDataset(300);
  AlshOptions options;
  options.min_active = 1000;  // > width: everything active
  auto trainer = MakeAlsh(EasyNet(data, 2, 24), options);
  const double acc = TrainEpochs(trainer.get(), data, 1, 3, nullptr, nullptr);
  EXPECT_GT(acc, 0.9);
  EXPECT_DOUBLE_EQ(trainer->AverageActiveFraction(), 1.0);
}

TEST(AlshTrainerTest, SparseTrainingLearnsAboveChance) {
  Dataset data = EasyDataset(400);
  auto trainer = MakeAlsh(EasyNet(data, 2, 48));
  const double acc = TrainEpochs(trainer.get(), data, 1, 6, nullptr, nullptr);
  EXPECT_GT(acc, 0.5);  // 4 classes -> chance is 0.25
}

TEST(AlshTrainerTest, ActiveFractionIsSparse) {
  Dataset data = EasyDataset(200);
  AlshOptions options;
  options.min_active = 4;
  auto trainer = MakeAlsh(EasyNet(data, 2, 64), options);
  TrainEpochs(trainer.get(), data, 1, 1, nullptr, nullptr);
  const double frac = trainer->AverageActiveFraction();
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 0.9);  // genuinely skipping nodes
}

TEST(AlshTrainerTest, RebuildScheduleFollowsPaperPhases) {
  Dataset data = EasyDataset(250);
  AlshOptions options;
  options.early_rebuild_every = 50;
  options.early_phase_samples = 10000;
  auto trainer = MakeAlsh(EasyNet(data), options);
  TrainEpochs(trainer.get(), data, 1, 1, nullptr, nullptr);
  // 250 samples / rebuild every 50 = 5 rebuild points x 2 hidden layers.
  EXPECT_EQ(trainer->TotalRebuilds(), 10u);
}

TEST(AlshTrainerTest, LatePhaseRebuildsLessOften) {
  Dataset data = EasyDataset(300);
  AlshOptions frequent;
  frequent.early_rebuild_every = 10;
  AlshOptions lazy;
  lazy.early_rebuild_every = 10;
  lazy.early_phase_samples = 100;  // switch to late period quickly
  lazy.late_rebuild_every = 100;
  auto t_frequent = MakeAlsh(EasyNet(data), frequent);
  auto t_lazy = MakeAlsh(EasyNet(data), lazy);
  TrainEpochs(t_frequent.get(), data, 1, 1, nullptr, nullptr);
  TrainEpochs(t_lazy.get(), data, 1, 1, nullptr, nullptr);
  EXPECT_GT(t_frequent->TotalRebuilds(), t_lazy->TotalRebuilds());
}

TEST(AlshTrainerTest, RebuildTimeIsCharged) {
  Dataset data = EasyDataset(200);
  AlshOptions options;
  options.early_rebuild_every = 20;
  auto trainer = MakeAlsh(EasyNet(data), options);
  TrainEpochs(trainer.get(), data, 1, 1, nullptr, nullptr);
  EXPECT_GT(trainer->timer().Seconds(kPhaseHashRebuild), 0.0);
}

TEST(AlshTrainerTest, PredictSparseReturnsValidClasses) {
  Dataset data = EasyDataset(100);
  auto trainer = MakeAlsh(EasyNet(data));
  TrainEpochs(trainer.get(), data, 1, 1, nullptr, nullptr);
  const auto preds = trainer->PredictSparse(data.features());
  ASSERT_EQ(preds.size(), data.size());
  for (int32_t p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, static_cast<int32_t>(data.num_classes()));
  }
}

TEST(AlshTrainerTest, ParallelModeLearnsComparably) {
  Dataset data = EasyDataset(400);
  AlshOptions serial_options;
  AlshOptions parallel_options;
  parallel_options.threads = 4;
  auto serial = MakeAlsh(EasyNet(data, 2, 48), serial_options);
  auto parallel = MakeAlsh(EasyNet(data, 2, 48), parallel_options);
  const double acc_serial =
      TrainEpochs(serial.get(), data, 32, 5, nullptr, nullptr);
  const double acc_parallel =
      TrainEpochs(parallel.get(), data, 32, 5, nullptr, nullptr);
  // HOGWILD races add noise but must not destroy learning ([50]'s claim).
  EXPECT_GT(acc_parallel, acc_serial - 0.2);
  EXPECT_GT(parallel->timer().Seconds("parallel"), 0.0);
}

TEST(AlshTrainerTest, OracleSelectionLearnsAtLeastAsWellAsLsh) {
  // Lemma 7.1's "detected exactly" idealization: exact top-k MIPS selection
  // should match or beat hash-based selection at the same budget.
  Dataset data = EasyDataset(300);
  AlshOptions oracle;
  oracle.selection = AlshSelection::kOracle;
  oracle.oracle_active = 16;
  AlshOptions lsh;
  lsh.min_active = 16;
  auto t_oracle = MakeAlsh(EasyNet(data, 2, 48), oracle);
  auto t_lsh = MakeAlsh(EasyNet(data, 2, 48), lsh);
  const double acc_oracle =
      TrainEpochs(t_oracle.get(), data, 1, 4, nullptr, nullptr);
  const double acc_lsh = TrainEpochs(t_lsh.get(), data, 1, 4, nullptr, nullptr);
  EXPECT_GE(acc_oracle, acc_lsh - 0.1);
  EXPECT_GT(acc_oracle, 0.5);
}

TEST(AlshTrainerTest, OracleSelectionHonorsBudgetExactly) {
  Dataset data = EasyDataset(60);
  AlshOptions options;
  options.selection = AlshSelection::kOracle;
  options.oracle_active = 12;
  auto trainer = MakeAlsh(EasyNet(data, 2, 48), options);
  TrainEpochs(trainer.get(), data, 1, 1, nullptr, nullptr);
  EXPECT_NEAR(trainer->AverageActiveFraction(), 12.0 / 48.0, 1e-9);
}

TEST(AlshTrainerTest, WtaFamilyTrains) {
  Dataset data = EasyDataset(300);
  AlshOptions options;
  options.index.family = LshFamily::kWta;
  options.index.bits = 9;  // 3 sub-hashes of window 8
  auto trainer = MakeAlsh(EasyNet(data, 2, 48), options);
  const double acc = TrainEpochs(trainer.get(), data, 1, 5, nullptr, nullptr);
  EXPECT_GT(acc, 0.4);
}

TEST(AlshTrainerTest, MinActiveFloorHonored) {
  Dataset data = EasyDataset(50);
  AlshOptions options;
  options.min_active = 20;
  options.index.bits = 10;  // 1024 buckets: most probes come back empty
  auto trainer = MakeAlsh(EasyNet(data, 2, 48), options);
  TrainEpochs(trainer.get(), data, 1, 1, nullptr, nullptr);
  EXPECT_GE(trainer->AverageActiveFraction(), 20.0 / 48.0 - 1e-6);
}

}  // namespace
}  // namespace sampnn
