#include "src/core/experiment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "tests/core/test_util.h"

namespace sampnn {
namespace {

using testing_util::EasyDataset;

DatasetSplits EasySplits() {
  Dataset all = EasyDataset(400);
  Rng rng(3);
  return std::move(SplitDataset(all, 280, 80, 40, rng)).value();
}

TEST(RunExperimentTest, ValidatesConfig) {
  DatasetSplits data = EasySplits();
  MlpConfig net = testing_util::EasyNet(data.train);
  ExperimentConfig config;
  config.epochs = 0;
  EXPECT_TRUE(RunExperiment(net, config, data).status().IsInvalidArgument());
  config = ExperimentConfig();
  config.batch_size = 0;
  EXPECT_TRUE(RunExperiment(net, config, data).status().IsInvalidArgument());
}

TEST(RunExperimentTest, RejectsEmptyTrainSplit) {
  DatasetSplits data = EasySplits();
  data.train = data.train.Slice(0, 0);
  MlpConfig net = MlpConfig::Uniform(100, 4, 1, 8);
  ExperimentConfig config;
  EXPECT_TRUE(RunExperiment(net, config, data).status().IsInvalidArgument());
}

TEST(RunExperimentTest, ProducesFullResult) {
  DatasetSplits data = EasySplits();
  MlpConfig net = testing_util::EasyNet(data.train);
  ExperimentConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  auto result = RunExperiment(net, config, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, "standard");
  EXPECT_FALSE(result->architecture.empty());
  ASSERT_EQ(result->epochs.size(), 3u);
  for (size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(result->epochs[e].epoch, e + 1);
    EXPECT_GT(result->epochs[e].seconds, 0.0);
    EXPECT_TRUE(std::isfinite(result->epochs[e].train_loss));
  }
  EXPECT_GT(result->final_test_accuracy, 0.5);
  EXPECT_GT(result->final_validation_accuracy, 0.5);
  EXPECT_GT(result->train_seconds, 0.0);
  EXPECT_GT(result->forward_seconds, 0.0);
  EXPECT_GT(result->backward_seconds, 0.0);
  ASSERT_TRUE(result->confusion.has_value());
  EXPECT_EQ(result->confusion->Total(), data.test.size());
}

TEST(RunExperimentTest, LearningImprovesAccuracyAcrossEpochs) {
  DatasetSplits data = EasySplits();
  MlpConfig net = testing_util::EasyNet(data.train);
  ExperimentConfig config;
  config.epochs = 5;
  config.batch_size = 16;
  auto result = std::move(RunExperiment(net, config, data)).value();
  EXPECT_GT(result.epochs.back().test_accuracy,
            result.epochs.front().test_accuracy - 0.05);
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

TEST(RunExperimentTest, EvalOnlyAtEndWhenRequested) {
  DatasetSplits data = EasySplits();
  MlpConfig net = testing_util::EasyNet(data.train);
  ExperimentConfig config;
  config.epochs = 3;
  config.eval_each_epoch = false;
  auto result = std::move(RunExperiment(net, config, data)).value();
  EXPECT_EQ(result.epochs[0].test_accuracy, 0.0);
  EXPECT_EQ(result.epochs[1].test_accuracy, 0.0);
  EXPECT_GT(result.epochs[2].test_accuracy, 0.0);
}

TEST(RunExperimentTest, ReproducibleAcrossRuns) {
  DatasetSplits data = EasySplits();
  MlpConfig net = testing_util::EasyNet(data.train);
  ExperimentConfig config;
  config.epochs = 2;
  auto r1 = std::move(RunExperiment(net, config, data)).value();
  auto r2 = std::move(RunExperiment(net, config, data)).value();
  EXPECT_DOUBLE_EQ(r1.final_test_accuracy, r2.final_test_accuracy);
  EXPECT_DOUBLE_EQ(r1.epochs[0].train_loss, r2.epochs[0].train_loss);
}

TEST(PaperMlpConfigTest, MatchesPaperDefaults) {
  Dataset data = EasyDataset(20);
  MlpConfig cfg = PaperMlpConfig(data, 3, 1000, 42);
  EXPECT_EQ(cfg.input_dim, data.dim());
  EXPECT_EQ(cfg.output_dim, data.num_classes());
  ASSERT_EQ(cfg.hidden_dims.size(), 3u);
  EXPECT_EQ(cfg.hidden_dims[0], 1000u);
  EXPECT_EQ(cfg.hidden_activation, Activation::kRelu);
}

TEST(PaperTrainerOptionsTest, MethodSpecificDefaults) {
  auto standard = PaperTrainerOptions(TrainerKind::kStandard, 20, 1);
  EXPECT_FLOAT_EQ(standard.learning_rate, 1e-3f);
  EXPECT_EQ(standard.optimizer, "adam");

  auto dropout = PaperTrainerOptions(TrainerKind::kDropout, 1, 1);
  EXPECT_FLOAT_EQ(dropout.dropout.keep_prob, 0.05f);

  auto alsh = PaperTrainerOptions(TrainerKind::kAlsh, 1, 1);
  EXPECT_EQ(alsh.alsh.index.bits, 6u);     // K = 6
  EXPECT_EQ(alsh.alsh.index.tables, 5u);   // L = 5
  EXPECT_EQ(alsh.alsh.index.transform.m, 3u);

  auto mc_batch = PaperTrainerOptions(TrainerKind::kMc, 20, 1);
  EXPECT_EQ(mc_batch.mc.grad_batch_samples, 10u);  // k = 10
  EXPECT_FLOAT_EQ(mc_batch.learning_rate, 1e-3f);

  auto mc_stochastic = PaperTrainerOptions(TrainerKind::kMc, 1, 1);
  EXPECT_FLOAT_EQ(mc_stochastic.learning_rate, 1e-4f);  // §9.3
}

}  // namespace
}  // namespace sampnn
