// Stress and failure-injection tests for ThreadPool, designed to run under
// TSan (ctest label: threadpool/concurrency). They hammer exactly the paths
// the plain unit tests only touch once: many concurrent producers, tasks
// that throw, destruction racing queued work, and repeated
// construct/destroy cycles.

#include "src/util/threadpool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(ThreadPoolStressTest, ManyConcurrentProducers) {
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 250;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, TaskExceptionIsRethrownFromWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran, i] {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("task 7 failed");
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The failing task must not abort the batch: all 20 ran.
  EXPECT_EQ(ran.load(), 20);
  // The error is consumed: a second Wait is clean and the pool is reusable.
  pool.Submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolStressTest, OnlyFirstExceptionSurvives) {
  ThreadPool pool(4);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolStressTest, ParallelForPropagatesExceptionAfterAllChunks) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(
      pool.ParallelFor(256,
                       [&visited](size_t i) {
                         visited.fetch_add(1);
                         if (i == 100) throw std::runtime_error("index 100");
                       }),
      std::runtime_error);
  // Chunks are independent: the throwing chunk stops early but every other
  // chunk runs to completion before ParallelFor returns.
  EXPECT_GT(visited.load(), 0);
  // Pool remains usable; the pool-level Wait sees no residual error
  // (ParallelFor handles its own exceptions via the latch).
  EXPECT_NO_THROW(pool.Wait());
  std::atomic<int> after{0};
  pool.ParallelFor(64, [&after](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForCallersAreIndependent) {
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread t1([&] {
    for (int r = 0; r < 20; ++r) {
      pool.ParallelFor(64, [&a](size_t) { a.fetch_add(1); });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 20; ++r) {
      pool.ParallelFor(64, [&b](size_t) { b.fetch_add(1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 20 * 64);
  EXPECT_EQ(b.load(), 20 * 64);
}

TEST(ThreadPoolStressTest, DestructionWithQueuedUnstartedTasksRunsAll) {
  // A single slow worker guarantees a deep queue of unstarted tasks at the
  // moment the destructor runs; none may be dropped and the destructor may
  // not deadlock.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolStressTest, DestructionWithThrowingQueuedTasksDoesNotAbort) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter, i] {
        counter.fetch_add(1);
        if (i % 7 == 0) throw std::runtime_error("queued failure");
      });
    }
    // No Wait(): pending exceptions are swallowed by the destructor, but
    // every task still runs and the process survives.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolStressTest, RepeatedConstructDestroy) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(1 + round % 4);
    std::atomic<int> counter{0};
    const int n = 1 + round % 16;
    for (int i = 0; i < n; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    ASSERT_EQ(counter.load(), n) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, WaitFromMultipleThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      counter.fetch_add(1);
    });
  }
  std::vector<std::thread> waiters;
  waiters.reserve(4);
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&pool] { pool.Wait(); });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolStressTest, TryPostRejectsWhenSaturatedWithoutLosingWork) {
  // One slow worker + a tiny pending bound: concurrent producers race
  // TryPost against a mostly-full queue. Accounting must be airtight —
  // every accepted task runs exactly once, every rejection is visible to
  // its producer, and nothing is silently dropped.
  ThreadPool pool(1);
  constexpr size_t kMaxPending = 4;
  constexpr int kProducers = 8;
  constexpr int kAttemptsPerProducer = 500;
  std::atomic<int> accepted{0}, rejected{0}, executed{0};
  // Hold the single worker so the queue actually saturates.
  pool.Submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerProducer; ++i) {
        if (pool.TryPost([&executed] { executed.fetch_add(1); },
                         kMaxPending)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(accepted.load() + rejected.load(),
            kProducers * kAttemptsPerProducer);
  // No silent drops, no duplicates: accepted == executed exactly.
  EXPECT_EQ(executed.load(), accepted.load());
  // The bound actually bit under this load (1 slow worker, bound of 4,
  // 8 producers posting 500 each).
  EXPECT_GT(rejected.load(), 0);
}

TEST(ThreadPoolStressTest, TryPostTasksStillRethrowFromWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  int posted = 0;
  while (posted < 8) {
    // Generous bound: acceptance is not the interesting part here.
    if (pool.TryPost(
            [&ran, posted] {
              ran.fetch_add(1);
              if (posted == 3) throw std::runtime_error("trypost failure");
            },
            /*max_pending=*/64)) {
      ++posted;
    }
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);
  // Error consumed; the pool is reusable afterwards.
  EXPECT_TRUE(pool.TryPost([&ran] { ran.fetch_add(1); }, 64));
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolStressTest, SubmitFromInsideTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 40);
}

}  // namespace
}  // namespace sampnn
