#include "src/util/status.h"

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad thing");
}

TEST(StatusTest, AllFactoryCodesMatch) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared state
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, MisuseWithOkCodeBecomesInternal) {
  Status st(StatusCode::kOk, "should not happen");
  EXPECT_TRUE(st.IsInternal());
}

TEST(StatusCodeToStringTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "Invalid argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "Already exists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "Failed precondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "Not implemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "Deadline exceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "Resource exhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "Data loss");
}

TEST(StatusTest, AbortedAndDataLossFactoriesAndPredicates) {
  const Status aborted = Status::Aborted("lost the swap race");
  EXPECT_TRUE(aborted.IsAborted());
  EXPECT_FALSE(aborted.IsDataLoss());
  EXPECT_EQ(aborted.code(), StatusCode::kAborted);
  const Status data_loss = Status::DataLoss("payload CRC mismatch");
  EXPECT_TRUE(data_loss.IsDataLoss());
  EXPECT_FALSE(data_loss.IsAborted());
  EXPECT_EQ(data_loss.code(), StatusCode::kDataLoss);
}

TEST(StatusCodeToStringTest, ServingCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "Deadline exceeded: late");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "Resource exhausted: full");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

namespace macros {

Status Fails() { return Status::IOError("disk"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnNotOk(bool fail) {
  SAMPNN_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  return Status::OK();
}

StatusOr<int> Source(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 5;
}

StatusOr<int> UseAssignOrReturn(bool fail) {
  SAMPNN_ASSIGN_OR_RETURN(int x, Source(fail));
  return x * 2;
}

// The checkpoint paths chain SAMPNN_ASSIGN_OR_RETURN across several
// fallible reads, including over move-only payloads; model that shape.
StatusOr<std::unique_ptr<int>> MoveOnlySource(bool fail) {
  if (fail) return Status::IOError("torn read");
  return std::make_unique<int>(21);
}

StatusOr<int> ChainTwoLevels(bool fail_first, bool fail_second) {
  SAMPNN_ASSIGN_OR_RETURN(std::unique_ptr<int> p, MoveOnlySource(fail_first));
  SAMPNN_ASSIGN_OR_RETURN(int x, Source(fail_second));
  return *p + x;
}

}  // namespace macros

TEST(StatusMacrosTest, AssignOrReturnHandlesMoveOnlyValues) {
  auto ok = macros::MoveOnlySource(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*std::move(ok).value(), 21);
}

TEST(StatusMacrosTest, ChainedAssignsPropagateTheFirstError) {
  auto ok = macros::ChainTwoLevels(false, false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 26);
  EXPECT_TRUE(macros::ChainTwoLevels(true, false).status().IsIOError());
  EXPECT_TRUE(macros::ChainTwoLevels(false, true).status().IsOutOfRange());
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macros::UseReturnNotOk(false).ok());
  EXPECT_TRUE(macros::UseReturnNotOk(true).IsIOError());
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = macros::UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 10);
  EXPECT_TRUE(macros::UseAssignOrReturn(true).status().IsOutOfRange());
}

}  // namespace
}  // namespace sampnn
