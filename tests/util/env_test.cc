#include "src/util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv(kVar); }
  void TearDown() override { unsetenv(kVar); }
  static constexpr const char* kVar = "SAMPNN_ENV_TEST_VAR";
};

TEST_F(EnvTest, UnsetReturnsDefault) {
  EXPECT_EQ(GetEnvOr(kVar, "fallback"), "fallback");
  EXPECT_EQ(GetEnvIntOr(kVar, 42), 42);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 2.5), 2.5);
}

TEST_F(EnvTest, EmptyCountsAsUnset) {
  setenv(kVar, "", 1);
  EXPECT_EQ(GetEnvOr(kVar, "fallback"), "fallback");
  EXPECT_EQ(GetEnvIntOr(kVar, 7), 7);
}

TEST_F(EnvTest, SetValueWins) {
  setenv(kVar, "hello", 1);
  EXPECT_EQ(GetEnvOr(kVar, "fallback"), "hello");
}

TEST_F(EnvTest, ParsesIntegers) {
  setenv(kVar, "123", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 0), 123);
  setenv(kVar, "-5", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 0), -5);
}

TEST_F(EnvTest, RejectsMalformedIntegers) {
  setenv(kVar, "12abc", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 9), 9);
  setenv(kVar, "abc", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 9), 9);
}

TEST_F(EnvTest, ParsesDoubles) {
  setenv(kVar, "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 0.0), 0.25);
  setenv(kVar, "1e-3", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 0.0), 1e-3);
}

TEST_F(EnvTest, RejectsMalformedDoubles) {
  setenv(kVar, "1.5x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 3.0), 3.0);
}

// --- GetEnvIntInRangeOr: hardened parsing for serving/thread knobs. ---

class EnvRangeTest : public EnvTest {
 protected:
  void SetUp() override {
    EnvTest::SetUp();
    ResetEnvWarningsForTest();
  }
};

TEST_F(EnvRangeTest, UnsetAndEmptyReturnDefault) {
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 5, 0, 100), 5);
  setenv(kVar, "", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 5, 0, 100), 5);
}

TEST_F(EnvRangeTest, InRangeValueWins) {
  setenv(kVar, "42", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 5, 0, 100), 42);
}

TEST_F(EnvRangeTest, GarbageFallsBackToDefaultAndWarns) {
  setenv(kVar, "not-a-number", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 7);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find(kVar), std::string::npos);
  EXPECT_NE(warning.find("invalid"), std::string::npos);
}

TEST_F(EnvRangeTest, TrailingGarbageFallsBackToDefault) {
  setenv(kVar, "12abc", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 7);
}

TEST_F(EnvRangeTest, NegativeBelowRangeClampsToMin) {
  setenv(kVar, "-9999", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 0);
}

TEST_F(EnvRangeTest, AboveRangeClampsToMax) {
  setenv(kVar, "1000000", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 100);
}

TEST_F(EnvRangeTest, HugeValueOverflowingLongLongClampsBySign) {
  setenv(kVar, "99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 100);
  setenv(kVar, "-99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 0);
}

TEST_F(EnvRangeTest, WarnsOnlyOncePerVariable) {
  setenv(kVar, "garbage", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 7);
  EXPECT_EQ(GetEnvIntInRangeOr(kVar, 7, 0, 100), 7);
  const std::string warnings = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warnings.find("invalid"), std::string::npos);
  // One warning line, not one per query.
  EXPECT_EQ(warnings.find("invalid"), warnings.rfind("invalid"));
}

}  // namespace
}  // namespace sampnn
