#include "src/util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv(kVar); }
  void TearDown() override { unsetenv(kVar); }
  static constexpr const char* kVar = "SAMPNN_ENV_TEST_VAR";
};

TEST_F(EnvTest, UnsetReturnsDefault) {
  EXPECT_EQ(GetEnvOr(kVar, "fallback"), "fallback");
  EXPECT_EQ(GetEnvIntOr(kVar, 42), 42);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 2.5), 2.5);
}

TEST_F(EnvTest, EmptyCountsAsUnset) {
  setenv(kVar, "", 1);
  EXPECT_EQ(GetEnvOr(kVar, "fallback"), "fallback");
  EXPECT_EQ(GetEnvIntOr(kVar, 7), 7);
}

TEST_F(EnvTest, SetValueWins) {
  setenv(kVar, "hello", 1);
  EXPECT_EQ(GetEnvOr(kVar, "fallback"), "hello");
}

TEST_F(EnvTest, ParsesIntegers) {
  setenv(kVar, "123", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 0), 123);
  setenv(kVar, "-5", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 0), -5);
}

TEST_F(EnvTest, RejectsMalformedIntegers) {
  setenv(kVar, "12abc", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 9), 9);
  setenv(kVar, "abc", 1);
  EXPECT_EQ(GetEnvIntOr(kVar, 9), 9);
}

TEST_F(EnvTest, ParsesDoubles) {
  setenv(kVar, "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 0.0), 0.25);
  setenv(kVar, "1e-3", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 0.0), 1e-3);
}

TEST_F(EnvTest, RejectsMalformedDoubles) {
  setenv(kVar, "1.5x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDoubleOr(kVar, 3.0), 3.0);
}

}  // namespace
}  // namespace sampnn
