#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace sampnn {
namespace {

// Builds argv from string literals (argv[0] is the program name).
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "prog");
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

Flags MakeFlags() {
  Flags flags("test");
  flags.AddInt("epochs", 10, "epochs");
  flags.AddDouble("lr", 0.001, "learning rate");
  flags.AddString("dataset", "mnist", "dataset");
  flags.AddBool("verbose", false, "verbosity");
  return flags;
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  Flags flags = MakeFlags();
  ArgvBuilder args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.001);
  EXPECT_EQ(flags.GetString("dataset"), "mnist");
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.IsSet("epochs"));
}

TEST(FlagsTest, EqualsForm) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--epochs=5", "--lr=0.1", "--dataset=cifar10"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.1);
  EXPECT_EQ(flags.GetString("dataset"), "cifar10");
  EXPECT_TRUE(flags.IsSet("epochs"));
}

TEST(FlagsTest, SpaceSeparatedForm) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--epochs", "7", "--dataset", "norb"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 7);
  EXPECT_EQ(flags.GetString("dataset"), "norb");
}

TEST(FlagsTest, BoolForms) {
  {
    Flags flags = MakeFlags();
    ArgvBuilder args({"--verbose"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_TRUE(flags.GetBool("verbose"));
  }
  {
    Flags flags = MakeFlags();
    ArgvBuilder args({"--verbose", "--no-verbose"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_FALSE(flags.GetBool("verbose"));
  }
  {
    Flags flags = MakeFlags();
    ArgvBuilder args({"--verbose=true"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_TRUE(flags.GetBool("verbose"));
  }
  {
    Flags flags = MakeFlags();
    ArgvBuilder args({"--verbose=0"});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_FALSE(flags.GetBool("verbose"));
  }
}

TEST(FlagsTest, UnknownFlagIsError) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--bogus=1"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, BadIntegerIsError) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--epochs=abc"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, TrailingGarbageOnNumberIsError) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--epochs=5x"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, MissingValueIsError) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--epochs"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, PositionalArgumentIsError) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"positional"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, BadBoolValueIsError) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--verbose=maybe"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, HelpReturnsFailedPrecondition) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--help"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsFailedPrecondition());
}

TEST(FlagsTest, UsageMentionsAllFlags) {
  Flags flags = MakeFlags();
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("--lr"), std::string::npos);
  EXPECT_NE(usage.find("--dataset"), std::string::npos);
  EXPECT_NE(usage.find("--no-verbose"), std::string::npos);
}

TEST(FlagsTest, NegativeNumbersParse) {
  Flags flags = MakeFlags();
  ArgvBuilder args({"--epochs=-3", "--lr=-0.5"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("epochs"), -3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), -0.5);
}

}  // namespace
}  // namespace sampnn
