#include "src/util/threadpool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, WaitBlocksUntilAllDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ParallelForSmallerThanThreadCount) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<long long> partial(kN, 0);
  pool.ParallelFor(kN, [&partial](size_t i) {
    partial[i] = static_cast<long long>(i) * i;
  });
  long long parallel = std::accumulate(partial.begin(), partial.end(), 0LL);
  long long serial = 0;
  for (size_t i = 0; i < kN; ++i) serial += static_cast<long long>(i) * i;
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, ActuallyUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run all queued tasks.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

}  // namespace
}  // namespace sampnn
