#include "src/util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/sampnn_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  auto writer = CsvWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  writer->WriteHeader({"a", "b"});
  writer->WriteRow({"1", "2"});
  writer->WriteRow({"3", "4"});
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(ReadAll(path_), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  auto writer = CsvWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  writer->WriteRow({"has,comma", "has\"quote", "has\nnewline", "plain"});
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(ReadAll(path_),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvEscapeTest, PassesThroughPlainCells) {
  EXPECT_EQ(CsvWriter::Escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::Escape(""), "");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::Escape("a\rb"), "\"a\rb\"");
}

TEST(CsvNumTest, FormatsWithPrecision) {
  EXPECT_EQ(CsvWriter::Num(1.23456), "1.2346");
  EXPECT_EQ(CsvWriter::Num(1.5, 1), "1.5");
  EXPECT_EQ(CsvWriter::Num(2.0, 0), "2");
}

TEST(CsvOpenTest, FailsOnUnwritablePath) {
  auto writer = CsvWriter::Open("/nonexistent-dir-xyz/out.csv");
  EXPECT_FALSE(writer.ok());
  EXPECT_TRUE(writer.status().IsIOError());
}

}  // namespace
}  // namespace sampnn
