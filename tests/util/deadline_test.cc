#include "src/util/deadline.h"

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMillis(), 100);
  clock.AdvanceMillis(50);
  EXPECT_EQ(clock.NowMillis(), 150);
}

TEST(ManualClockTest, SleepAdvancesTheClockItself) {
  // Injected delay faults "sleep" deterministically under test.
  ManualClock clock;
  clock.SleepMillis(25);
  EXPECT_EQ(clock.NowMillis(), 25);
}

TEST(RealClockTest, IsMonotonicNonDecreasing) {
  const Clock* clock = Clock::Real();
  const int64_t a = clock->NowMillis();
  const int64_t b = clock->NowMillis();
  EXPECT_LE(a, b);
}

TEST(DeadlineTest, NeverNeverExpires) {
  Deadline never = Deadline::Never();
  EXPECT_TRUE(never.is_never());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.remaining_millis(), INT64_MAX);
}

TEST(DeadlineTest, ExpiresExactlyAtTheInstant) {
  ManualClock clock;
  Deadline d = Deadline::FromNowMillis(50, &clock);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_millis(), 50);
  clock.AdvanceMillis(49);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_millis(), 1);
  clock.AdvanceMillis(1);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_millis(), 0);
}

TEST(DeadlineTest, AtMillisIsAbsolute) {
  ManualClock clock(10);
  Deadline d = Deadline::AtMillis(30, &clock);
  EXPECT_EQ(d.expires_at_millis(), 30);
  EXPECT_EQ(d.remaining_millis(), 20);
  clock.AdvanceMillis(100);
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, CopiesShareTheClockTimeline) {
  ManualClock clock;
  Deadline a = Deadline::FromNowMillis(10, &clock);
  Deadline b = a;
  clock.AdvanceMillis(10);
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken token;
  CancellationToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelContextTest, StopsOnCancelOrExpiry) {
  ManualClock clock;
  CancelContext ctx;
  ctx.deadline = Deadline::FromNowMillis(10, &clock);
  EXPECT_FALSE(ctx.ShouldStop());

  clock.AdvanceMillis(10);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.StopStatus().IsDeadlineExceeded());
}

TEST(CancelContextTest, CancelledBeforeExpiryIsResourceExhausted) {
  ManualClock clock;
  CancelContext ctx;
  ctx.deadline = Deadline::FromNowMillis(10, &clock);
  ctx.token.Cancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.StopStatus().IsResourceExhausted());
}

TEST(CancelContextTest, ExpiredDeadlineWinsOverCancellation) {
  // A request that is both cancelled and out of time reports the deadline:
  // that is the client-actionable cause.
  ManualClock clock;
  CancelContext ctx;
  ctx.deadline = Deadline::FromNowMillis(5, &clock);
  ctx.token.Cancel();
  clock.AdvanceMillis(5);
  EXPECT_TRUE(ctx.StopStatus().IsDeadlineExceeded());
}

TEST(CancelContextTest, DefaultContextNeverStops) {
  CancelContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
}

}  // namespace
}  // namespace sampnn
