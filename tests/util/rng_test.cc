#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  // Each bucket should be within 10% of the expected count.
  for (uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBound, kDraws / kBound * 0.10)
        << "bucket " << b;
  }
}

TEST(RngTest, NextFloatInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.NextFloat();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(RngTest, NextDoubleMomentsMatchUniform) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextDouble();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
  EXPECT_NEAR(sum_sq / kDraws, 1.0 / 3.0, 0.01);
}

TEST(RngTest, NextUniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextUniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextGaussian(10.0f, 0.5f);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.Split();
  // The child stream should not be a shifted copy of the parent's.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.Split(), cb = b.Split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleHandlesSmallVectors) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ShuffleIsRoughlyUniformOnFirstPosition) {
  // Position 0 should receive each of the 5 values ~equally often.
  std::vector<int> counts(5, 0);
  Rng rng(43);
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.Shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 5, kTrials / 5 * 0.1);
  }
}

TEST(RngTest, StateRoundTripContinuesIdentically) {
  Rng a(123);
  for (int i = 0; i < 100; ++i) a.NextU64();
  a.NextGaussian();  // leaves a cached Box-Muller pair in the state

  Rng b(999);  // entirely different position
  b.SetState(a.GetState());
  // The restored stream must continue exactly where the original is —
  // including the cached gaussian, which a resumed dropout/MC run would
  // otherwise draw differently from the uninterrupted run.
  EXPECT_EQ(a.NextGaussian(), b.NextGaussian());
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
  EXPECT_EQ(a.NextFloat(), b.NextFloat());
  EXPECT_EQ(a.NextBounded(1000), b.NextBounded(1000));
}

TEST(RngTest, GetStateDoesNotPerturbTheStream) {
  Rng a(7);
  Rng b(7);
  // status-ignored: the test is that the call itself is side-effect-free
  (void)a.GetState();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SetStateRejectsTheAllZeroDegenerateState) {
  // xoshiro256** never leaves an all-zero state, but a corrupt checkpoint
  // could hand one in; SetState must keep the generator usable.
  Rng a(1);
  a.SetState(RngState{});
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= a.NextU64() != 0;
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace sampnn
