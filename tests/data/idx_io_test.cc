#include "src/data/idx_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

void WriteBigEndianU32(std::ofstream& out, uint32_t v) {
  const uint8_t buf[4] = {static_cast<uint8_t>(v >> 24),
                          static_cast<uint8_t>(v >> 16),
                          static_cast<uint8_t>(v >> 8),
                          static_cast<uint8_t>(v)};
  out.write(reinterpret_cast<const char*>(buf), 4);
}

class IdxIoTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = ::testing::TempDir(); }
  void TearDown() override {
    for (const auto& f : created_) std::remove(f.c_str());
  }

  std::string WriteImages(const std::string& name, uint32_t count,
                          uint32_t rows, uint32_t cols,
                          const std::vector<uint8_t>& pixels,
                          uint32_t magic = 0x00000803,
                          bool truncate_payload = false) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary);
    WriteBigEndianU32(out, magic);
    WriteBigEndianU32(out, count);
    WriteBigEndianU32(out, rows);
    WriteBigEndianU32(out, cols);
    const size_t n = truncate_payload ? pixels.size() / 2 : pixels.size();
    out.write(reinterpret_cast<const char*>(pixels.data()),
              static_cast<std::streamsize>(n));
    created_.push_back(path);
    return path;
  }

  std::string WriteLabels(const std::string& name,
                          const std::vector<uint8_t>& labels,
                          uint32_t magic = 0x00000801) {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary);
    WriteBigEndianU32(out, magic);
    WriteBigEndianU32(out, static_cast<uint32_t>(labels.size()));
    out.write(reinterpret_cast<const char*>(labels.data()),
              static_cast<std::streamsize>(labels.size()));
    created_.push_back(path);
    return path;
  }

  std::string dir_;
  std::vector<std::string> created_;
};

TEST_F(IdxIoTest, ReadsImagesRoundTrip) {
  std::vector<uint8_t> pixels(2 * 3 * 3);
  for (size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<uint8_t>(i * 10);
  }
  const std::string path = WriteImages("imgs", 2, 3, 3, pixels);
  auto images = ReadIdxImages(path);
  ASSERT_TRUE(images.ok());
  EXPECT_EQ(images->count, 2u);
  EXPECT_EQ(images->rows, 3u);
  EXPECT_EQ(images->cols, 3u);
  EXPECT_EQ(images->pixels, pixels);
}

TEST_F(IdxIoTest, ReadsLabelsRoundTrip) {
  const std::string path = WriteLabels("labels", {0, 1, 2, 9});
  auto labels = ReadIdxLabels(path);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<uint8_t>{0, 1, 2, 9}));
}

TEST_F(IdxIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadIdxImages(dir_ + "/nope").status().IsIOError());
  EXPECT_TRUE(ReadIdxLabels(dir_ + "/nope").status().IsIOError());
}

TEST_F(IdxIoTest, WrongMagicIsInvalidArgument) {
  const std::string imgs =
      WriteImages("bad_magic", 1, 2, 2, std::vector<uint8_t>(4), 0xDEAD);
  EXPECT_TRUE(ReadIdxImages(imgs).status().IsInvalidArgument());
  const std::string labels = WriteLabels("bad_magic2", {0}, 0xBEEF);
  EXPECT_TRUE(ReadIdxLabels(labels).status().IsInvalidArgument());
}

TEST_F(IdxIoTest, TruncatedPixelsIsIOError) {
  const std::string path = WriteImages("trunc", 2, 4, 4,
                                       std::vector<uint8_t>(32), 0x00000803,
                                       /*truncate_payload=*/true);
  EXPECT_TRUE(ReadIdxImages(path).status().IsIOError());
}

TEST_F(IdxIoTest, ImplausibleHeaderDimensionsRejectedBeforeAllocating) {
  // A garbage header declaring ~4 billion images or 2^20-pixel sides must
  // be rejected by plausibility checks, never drive the allocation.
  const std::string huge_count =
      WriteImages("huge_count", 0xF0000000u, 28, 28, {});
  EXPECT_TRUE(ReadIdxImages(huge_count).status().IsInvalidArgument());
  const std::string huge_side =
      WriteImages("huge_side", 1, 1u << 20, 28, {});
  EXPECT_TRUE(ReadIdxImages(huge_side).status().IsInvalidArgument());
}

TEST_F(IdxIoTest, DeclaredImageCountPastEndOfFileIsIOError) {
  // Plausible-looking header, but the payload for the declared count is
  // simply not there: caught against the file length before allocating.
  const std::string path = WriteImages("short_payload", 1000, 28, 28,
                                       std::vector<uint8_t>(64));
  EXPECT_TRUE(ReadIdxImages(path).status().IsIOError());
}

TEST_F(IdxIoTest, DeclaredLabelCountPastEndOfFileIsIOError) {
  const std::string path = dir_ + "/label_short";
  {
    std::ofstream out(path, std::ios::binary);
    WriteBigEndianU32(out, 0x00000801);
    WriteBigEndianU32(out, 5000);  // declares 5000 labels...
    out.put(7);                    // ...provides one
  }
  created_.push_back(path);
  EXPECT_TRUE(ReadIdxLabels(path).status().IsIOError());
}

TEST_F(IdxIoTest, ImplausibleLabelCountIsInvalidArgument) {
  const std::string path = dir_ + "/label_huge";
  {
    std::ofstream out(path, std::ios::binary);
    WriteBigEndianU32(out, 0x00000801);
    WriteBigEndianU32(out, 0xF0000000u);
  }
  created_.push_back(path);
  EXPECT_TRUE(ReadIdxLabels(path).status().IsInvalidArgument());
}

TEST_F(IdxIoTest, LoadIdxDatasetScalesAndLabels) {
  std::vector<uint8_t> pixels{0, 255, 128, 64};  // 1 image of 2x2
  const std::string imgs = WriteImages("ds_imgs", 1, 2, 2, pixels);
  const std::string labels = WriteLabels("ds_labels", {3});
  auto dataset = LoadIdxDataset(imgs, labels, 10);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 1u);
  EXPECT_EQ(dataset->dim(), 4u);
  EXPECT_EQ(dataset->num_classes(), 10u);
  EXPECT_EQ(dataset->Label(0), 3);
  EXPECT_FLOAT_EQ(dataset->Example(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(dataset->Example(0)[1], 1.0f);
  EXPECT_NEAR(dataset->Example(0)[2], 128.0f / 255.0f, 1e-6f);
}

TEST_F(IdxIoTest, LoadIdxDatasetInfersClassesFromLabels) {
  const std::string imgs =
      WriteImages("infer_imgs", 3, 1, 1, std::vector<uint8_t>(3, 100));
  const std::string labels = WriteLabels("infer_labels", {0, 4, 2});
  auto dataset = LoadIdxDataset(imgs, labels, 0);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_classes(), 5u);
}

TEST_F(IdxIoTest, LoadIdxDatasetRejectsCountMismatch) {
  const std::string imgs =
      WriteImages("mm_imgs", 2, 1, 1, std::vector<uint8_t>(2));
  const std::string labels = WriteLabels("mm_labels", {0, 1, 2});
  EXPECT_TRUE(LoadIdxDataset(imgs, labels, 3).status().IsInvalidArgument());
}

TEST_F(IdxIoTest, LoadMnistDirectoryCarvesValidation) {
  std::vector<uint8_t> train_pixels(10 * 4, 50);
  std::vector<uint8_t> test_pixels(4 * 4, 60);
  WriteImages("train-images-idx3-ubyte", 10, 2, 2, train_pixels);
  WriteLabels("train-labels-idx1-ubyte",
              {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  WriteImages("t10k-images-idx3-ubyte", 4, 2, 2, test_pixels);
  WriteLabels("t10k-labels-idx1-ubyte", {1, 2, 3, 4});
  auto splits = LoadMnistDirectory(dir_, /*validation_size=*/3);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->train.size(), 7u);
  EXPECT_EQ(splits->validation.size(), 3u);
  EXPECT_EQ(splits->test.size(), 4u);
}

TEST_F(IdxIoTest, LoadMnistDirectoryRejectsHugeValidation) {
  WriteImages("train-images-idx3-ubyte", 2, 1, 1, {1, 2});
  WriteLabels("train-labels-idx1-ubyte", {0, 1});
  WriteImages("t10k-images-idx3-ubyte", 1, 1, 1, {3});
  WriteLabels("t10k-labels-idx1-ubyte", {0});
  EXPECT_TRUE(LoadMnistDirectory(dir_, 5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace sampnn
