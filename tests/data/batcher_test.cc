#include "src/data/batcher.h"

#include <algorithm>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

Dataset UniqueFeatureDataset(size_t n) {
  Matrix features(n, 1);
  std::vector<int32_t> labels(n, 0);
  for (size_t i = 0; i < n; ++i) features(i, 0) = static_cast<float>(i);
  return std::move(Dataset::Create(std::move(features), std::move(labels), 1))
      .value();
}

TEST(BatcherTest, EpochCoversEverySampleOnce) {
  Dataset d = UniqueFeatureDataset(23);
  Batcher batcher(d, 5, 1);
  Matrix x;
  std::vector<int32_t> y;
  std::map<float, int> seen;
  size_t batches = 0;
  while (batcher.Next(&x, &y)) {
    ++batches;
    for (size_t r = 0; r < x.rows(); ++r) ++seen[x(r, 0)];
  }
  EXPECT_EQ(batches, 5u);  // 4 full + 1 partial
  EXPECT_EQ(seen.size(), 23u);
  for (const auto& [_, count] : seen) EXPECT_EQ(count, 1);
}

TEST(BatcherTest, BatchSizesAreFullThenRemainder) {
  Dataset d = UniqueFeatureDataset(10);
  Batcher batcher(d, 4, 2);
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> sizes;
  while (batcher.Next(&x, &y)) sizes.push_back(x.rows());
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2}));
}

TEST(BatcherTest, DropRemainderSkipsPartialBatch) {
  Dataset d = UniqueFeatureDataset(10);
  Batcher batcher(d, 4, 3, /*drop_remainder=*/true);
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> sizes;
  while (batcher.Next(&x, &y)) sizes.push_back(x.rows());
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 4}));
  EXPECT_EQ(batcher.BatchesPerEpoch(), 2u);
}

TEST(BatcherTest, BatchesPerEpochRoundsUp) {
  Dataset d = UniqueFeatureDataset(10);
  EXPECT_EQ(Batcher(d, 4, 1).BatchesPerEpoch(), 3u);
  EXPECT_EQ(Batcher(d, 10, 1).BatchesPerEpoch(), 1u);
  EXPECT_EQ(Batcher(d, 1, 1).BatchesPerEpoch(), 10u);
}

TEST(BatcherTest, SecondEpochIsReshuffled) {
  Dataset d = UniqueFeatureDataset(50);
  Batcher batcher(d, 50, 4);
  Matrix x;
  std::vector<int32_t> y;
  ASSERT_TRUE(batcher.Next(&x, &y));
  std::vector<float> first_epoch(x.data(), x.data() + 50);
  ASSERT_FALSE(batcher.Next(&x, &y));  // epoch boundary
  ASSERT_TRUE(batcher.Next(&x, &y));
  std::vector<float> second_epoch(x.data(), x.data() + 50);
  EXPECT_NE(first_epoch, second_epoch);
  // Still a permutation of the same samples.
  std::sort(first_epoch.begin(), first_epoch.end());
  std::sort(second_epoch.begin(), second_epoch.end());
  EXPECT_EQ(first_epoch, second_epoch);
}

TEST(BatcherTest, StochasticSettingIsBatchSizeOne) {
  Dataset d = UniqueFeatureDataset(7);
  Batcher batcher(d, 1, 5);
  Matrix x;
  std::vector<int32_t> y;
  size_t steps = 0;
  while (batcher.Next(&x, &y)) {
    EXPECT_EQ(x.rows(), 1u);
    ++steps;
  }
  EXPECT_EQ(steps, 7u);
}

TEST(BatcherTest, DeterministicInSeed) {
  Dataset d = UniqueFeatureDataset(20);
  Batcher a(d, 20, 9), b(d, 20, 9);
  Matrix xa, xb;
  std::vector<int32_t> ya, yb;
  ASSERT_TRUE(a.Next(&xa, &ya));
  ASSERT_TRUE(b.Next(&xb, &yb));
  EXPECT_TRUE(xa.AllClose(xb, 0.0f));
}

TEST(BatcherTest, RewindRestartsEpoch) {
  Dataset d = UniqueFeatureDataset(6);
  Batcher batcher(d, 3, 10);
  Matrix x1, x2;
  std::vector<int32_t> y;
  ASSERT_TRUE(batcher.Next(&x1, &y));
  batcher.Rewind();
  ASSERT_TRUE(batcher.Next(&x2, &y));
  EXPECT_TRUE(x1.AllClose(x2, 0.0f));
}

TEST(BatcherTest, StateRoundTripContinuesMidEpochIdentically) {
  Dataset d = UniqueFeatureDataset(20);
  Batcher a(d, 4, 11);
  Matrix xa, xb;
  std::vector<int32_t> ya, yb;
  ASSERT_TRUE(a.Next(&xa, &ya));
  ASSERT_TRUE(a.Next(&xa, &ya));  // two batches into the epoch

  std::stringstream state;
  ASSERT_TRUE(a.SaveState(state).ok());
  Batcher b(d, 4, 999);  // different seed: fully overwritten by LoadState
  ASSERT_TRUE(b.LoadState(state).ok());

  // Identical batches for the rest of this epoch AND across the reshuffle
  // into the next (the shuffle RNG travels in the state).
  for (int i = 0; i < 12; ++i) {
    const bool more_a = a.Next(&xa, &ya);
    const bool more_b = b.Next(&xb, &yb);
    ASSERT_EQ(more_a, more_b) << "batch " << i;
    if (!more_a) continue;
    EXPECT_TRUE(xa.AllClose(xb, 0.0f)) << "batch " << i;
    EXPECT_EQ(ya, yb) << "batch " << i;
  }
}

TEST(BatcherTest, LoadStateRejectsMismatchedDatasetSize) {
  Dataset d20 = UniqueFeatureDataset(20);
  Dataset d10 = UniqueFeatureDataset(10);
  Batcher a(d20, 4, 1);
  std::stringstream state;
  ASSERT_TRUE(a.SaveState(state).ok());
  Batcher b(d10, 4, 1);
  EXPECT_TRUE(b.LoadState(state).IsInvalidArgument());
}

}  // namespace
}  // namespace sampnn
