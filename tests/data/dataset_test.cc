#include "src/data/dataset.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

Dataset MakeDataset(size_t n, size_t dim, size_t classes, uint64_t seed) {
  Rng rng(seed);
  Matrix features = Matrix::RandomUniform(n, dim, rng, 0.0f, 1.0f);
  std::vector<int32_t> labels(n);
  for (auto& y : labels) {
    y = static_cast<int32_t>(rng.NextBounded(classes));
  }
  return std::move(Dataset::Create(std::move(features), std::move(labels),
                                   classes))
      .value();
}

TEST(DatasetTest, CreateValidatesLabelCount) {
  Matrix features(3, 2);
  std::vector<int32_t> labels{0, 1};  // one short
  EXPECT_TRUE(Dataset::Create(std::move(features), labels, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST(DatasetTest, CreateValidatesLabelRange) {
  Matrix features(2, 2);
  EXPECT_TRUE(Dataset::Create(Matrix(2, 2), {0, 2}, 2).status().IsOutOfRange());
  EXPECT_TRUE(
      Dataset::Create(Matrix(2, 2), {0, -1}, 2).status().IsOutOfRange());
  EXPECT_TRUE(
      Dataset::Create(Matrix(2, 2), {0, 1}, 0).status().IsInvalidArgument());
}

TEST(DatasetTest, AccessorsWork) {
  Dataset d = MakeDataset(10, 4, 3, 1);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.dim(), 4u);
  EXPECT_EQ(d.num_classes(), 3u);
  EXPECT_EQ(d.Example(0).size(), 4u);
  EXPECT_GE(d.Label(5), 0);
  EXPECT_LT(d.Label(5), 3);
}

TEST(DatasetTest, SubsetCopiesSelectedExamples) {
  Dataset d = MakeDataset(10, 3, 2, 2);
  std::vector<size_t> idx{7, 2, 2};
  Dataset sub = d.Subset(idx);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.Label(0), d.Label(7));
  EXPECT_EQ(sub.Label(1), d.Label(2));
  EXPECT_EQ(sub.Label(2), d.Label(2));
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(sub.Example(0)[j], d.Example(7)[j]);
  }
}

TEST(DatasetTest, SliceIsHalfOpen) {
  Dataset d = MakeDataset(10, 2, 2, 3);
  Dataset s = d.Slice(3, 7);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.Label(0), d.Label(3));
  EXPECT_EQ(s.Label(3), d.Label(6));
  EXPECT_EQ(d.Slice(5, 5).size(), 0u);
}

TEST(DatasetTest, FillBatchResizesAndCopies) {
  Dataset d = MakeDataset(10, 4, 2, 4);
  Matrix x;
  std::vector<int32_t> y;
  std::vector<size_t> idx{1, 9};
  d.FillBatch(idx, &x, &y);
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), 4u);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], d.Label(1));
  EXPECT_EQ(y[1], d.Label(9));
  for (size_t j = 0; j < 4; ++j) EXPECT_EQ(x(1, j), d.Example(9)[j]);
}

TEST(DatasetTest, ClassCountsSumToSize) {
  Dataset d = MakeDataset(100, 2, 5, 5);
  const auto counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), size_t{0}), 100u);
}

TEST(DatasetTest, ShufflePreservesExamples) {
  Dataset d = MakeDataset(50, 3, 4, 6);
  // Collect multiset of (first feature, label) before/after.
  auto signature = [](const Dataset& ds) {
    std::vector<std::pair<float, int32_t>> sig;
    for (size_t i = 0; i < ds.size(); ++i) {
      sig.emplace_back(ds.Example(i)[0], ds.Label(i));
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  const auto before = signature(d);
  Rng rng(7);
  d.Shuffle(rng);
  EXPECT_EQ(signature(d), before);
}

TEST(SplitDatasetTest, SizesMatchRequest) {
  Dataset d = MakeDataset(100, 2, 2, 8);
  Rng rng(9);
  auto splits = SplitDataset(d, 70, 20, 10, rng);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->train.size(), 70u);
  EXPECT_EQ(splits->test.size(), 20u);
  EXPECT_EQ(splits->validation.size(), 10u);
}

TEST(SplitDatasetTest, AllowsDroppingRemainder) {
  Dataset d = MakeDataset(100, 2, 2, 10);
  Rng rng(11);
  auto splits = SplitDataset(d, 50, 20, 10, rng);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->train.size(), 50u);
}

TEST(SplitDatasetTest, RejectsOversizedRequest) {
  Dataset d = MakeDataset(10, 2, 2, 12);
  Rng rng(13);
  EXPECT_TRUE(SplitDataset(d, 8, 2, 1, rng).status().IsInvalidArgument());
}

TEST(SplitDatasetTest, PartitionsAreDisjoint) {
  // Give every example a unique feature value to detect overlap.
  Matrix features(30, 1);
  std::vector<int32_t> labels(30, 0);
  for (size_t i = 0; i < 30; ++i) features(i, 0) = static_cast<float>(i);
  Dataset d =
      std::move(Dataset::Create(std::move(features), std::move(labels), 1))
          .value();
  Rng rng(14);
  auto splits = std::move(SplitDataset(d, 10, 10, 10, rng)).value();
  std::vector<float> seen;
  for (const Dataset* part :
       {&splits.train, &splits.test, &splits.validation}) {
    for (size_t i = 0; i < part->size(); ++i) {
      seen.push_back(part->Example(i)[0]);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace sampnn
