#include "src/data/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(BenchmarkSpecTest, AllSixDatasetsRegistered) {
  const auto names = BenchmarkDatasetNames();
  ASSERT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    EXPECT_TRUE(GetBenchmarkSpec(name).ok()) << name;
  }
  EXPECT_TRUE(GetBenchmarkSpec("imagenet").status().IsNotFound());
}

TEST(BenchmarkSpecTest, PaperDimensionsAndClasses) {
  auto mnist = std::move(GetBenchmarkSpec("mnist")).value();
  EXPECT_EQ(mnist.synthetic.dim(), 784u);
  EXPECT_EQ(mnist.synthetic.num_classes, 10u);
  EXPECT_EQ(mnist.splits.train, 55000u);
  EXPECT_EQ(mnist.splits.test, 10000u);
  EXPECT_EQ(mnist.splits.validation, 5000u);

  auto emnist = std::move(GetBenchmarkSpec("emnist")).value();
  EXPECT_EQ(emnist.synthetic.num_classes, 26u);
  EXPECT_EQ(emnist.splits.train, 104800u);

  auto norb = std::move(GetBenchmarkSpec("norb")).value();
  EXPECT_EQ(norb.synthetic.dim(), 9216u);  // 96 x 96
  EXPECT_EQ(norb.synthetic.num_classes, 5u);
  EXPECT_EQ(norb.splits.test, 24300u);  // test larger than train, per paper

  auto cifar = std::move(GetBenchmarkSpec("cifar10")).value();
  EXPECT_EQ(cifar.synthetic.dim(), 3072u);  // 32 x 32 x 3
  EXPECT_EQ(cifar.synthetic.channels, 3u);
}

TEST(GenerateSyntheticTest, ShapeAndRange) {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.image_height = 8;
  spec.image_width = 8;
  spec.num_classes = 4;
  spec.num_examples = 200;
  Dataset d = GenerateSynthetic(spec, 42);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_EQ(d.dim(), 64u);
  EXPECT_EQ(d.num_classes(), 4u);
  for (size_t i = 0; i < d.size(); ++i) {
    for (float v : d.Example(i)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(GenerateSyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.image_height = 6;
  spec.image_width = 6;
  spec.num_examples = 50;
  Dataset a = GenerateSynthetic(spec, 7);
  Dataset b = GenerateSynthetic(spec, 7);
  EXPECT_TRUE(a.features().AllClose(b.features(), 0.0f));
  EXPECT_EQ(a.labels(), b.labels());
  Dataset c = GenerateSynthetic(spec, 8);
  EXPECT_FALSE(a.features().AllClose(c.features(), 1e-6f));
}

TEST(GenerateSyntheticTest, AllClassesRepresented) {
  SyntheticSpec spec;
  spec.num_classes = 10;
  spec.num_examples = 1000;
  spec.image_height = 8;
  spec.image_width = 8;
  Dataset d = GenerateSynthetic(spec, 3);
  const auto counts = d.ClassCounts();
  for (size_t c = 0; c < 10; ++c) EXPECT_GT(counts[c], 50u) << "class " << c;
}

TEST(GenerateSyntheticTest, ClassesAreSeparable) {
  // A nearest-class-mean classifier must beat chance by a wide margin on the
  // easy (MNIST-profile) generator: the substitute datasets must be
  // learnable for the training experiments to mean anything.
  SyntheticSpec spec = std::move(GetBenchmarkSpec("mnist")).value().synthetic;
  spec.num_examples = 600;
  Dataset d = GenerateSynthetic(spec, 11);
  // Class means from the first 400 examples.
  const size_t dim = d.dim();
  std::vector<std::vector<double>> means(10, std::vector<double>(dim, 0.0));
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < 400; ++i) {
    const auto cls = static_cast<size_t>(d.Label(i));
    ++counts[cls];
    auto x = d.Example(i);
    for (size_t j = 0; j < dim; ++j) means[cls][j] += x[j];
  }
  for (size_t c = 0; c < 10; ++c) {
    if (counts[c] == 0) continue;
    for (double& v : means[c]) v /= static_cast<double>(counts[c]);
  }
  size_t correct = 0;
  for (size_t i = 400; i < 600; ++i) {
    auto x = d.Example(i);
    size_t best = 0;
    double best_dist = 1e300;
    for (size_t c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        const double diff = x[j] - means[c][j];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (best == static_cast<size_t>(d.Label(i))) ++correct;
  }
  EXPECT_GT(correct, 120u);  // >60% vs 10% chance
}

TEST(GenerateBenchmarkTest, ScaleDividesSampleCountsOnly) {
  auto splits = GenerateBenchmark("mnist", 5, 100);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->train.size(), 550u);
  EXPECT_EQ(splits->test.size(), 200u);  // floored at 200
  EXPECT_EQ(splits->validation.size(), 50u);
  EXPECT_EQ(splits->train.dim(), 784u);  // dimension untouched
}

TEST(GenerateBenchmarkTest, FloorsKeepSmallSplitsMeaningful) {
  // NORB's train split is 22300; at scale 100 the floor of 400 applies.
  auto norb = std::move(GenerateBenchmark("norb", 5, 100)).value();
  EXPECT_EQ(norb.train.size(), 400u);
  EXPECT_EQ(norb.test.size(), 243u);  // 24300/100 > floor
  // scale=1 reproduces the paper's sizes exactly.
  // (Not generated here — full NORB is 48600 x 9216 floats — but the spec
  // arithmetic is what the floors must not disturb: n/1 >= min(n, floor).)
}

TEST(GenerateBenchmarkTest, RejectsZeroScaleAndUnknownName) {
  EXPECT_TRUE(GenerateBenchmark("mnist", 5, 0).status().IsInvalidArgument());
  EXPECT_TRUE(GenerateBenchmark("svhn", 5, 10).status().IsNotFound());
}

TEST(GenerateBenchmarkTest, SplitsShareClassSpace) {
  auto splits = std::move(GenerateBenchmark("emnist", 5, 200)).value();
  EXPECT_EQ(splits.train.num_classes(), 26u);
  EXPECT_EQ(splits.test.num_classes(), 26u);
  EXPECT_EQ(splits.validation.num_classes(), 26u);
}

TEST(GenerateBenchmarkTest, HarderDatasetsHaveHigherDifficultyKnobs) {
  // The difficulty ordering that stands in for the paper's empirical
  // ordering (MNIST easiest, CIFAR-10 hardest).
  auto mnist = std::move(GetBenchmarkSpec("mnist")).value().synthetic;
  auto kmnist = std::move(GetBenchmarkSpec("kmnist")).value().synthetic;
  auto cifar = std::move(GetBenchmarkSpec("cifar10")).value().synthetic;
  EXPECT_LT(mnist.noise_stddev, kmnist.noise_stddev);
  EXPECT_LT(kmnist.noise_stddev, cifar.noise_stddev);
  EXPECT_LT(mnist.shared_structure, cifar.shared_structure);
}

}  // namespace
}  // namespace sampnn
