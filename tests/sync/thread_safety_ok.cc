// Positive control for the negative-compile gate in tests/CMakeLists.txt:
// identical shape to thread_safety_violation.cc but with correct locking.
// This TU must compile cleanly under `clang++ -Wthread-safety
// -Wthread-safety-beta -Werror`; if it does not, the harness (include
// paths, flags) is broken and the violation check would fail for the wrong
// reason.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    sampnn::MutexLock lock(mu_);
    ++value_;
  }

  int Get() {
    sampnn::MutexLock lock(mu_);
    return value_;
  }

 private:
  sampnn::Mutex mu_{"test.counter", 1000};
  int value_ SAMPNN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
