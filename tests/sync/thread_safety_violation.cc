// Negative-compile fixture: this translation unit must FAIL to compile
// under `clang++ -Wthread-safety -Wthread-safety-beta -Werror`.
//
// tests/CMakeLists.txt try_compiles it (Clang configures only) and aborts
// the configure if it *succeeds* — that would mean the SAMPNN_GUARDED_BY
// plumbing has rotted and the analysis is no longer protecting anything.
// tests/sync/thread_safety_ok.cc is the positive control proving the
// harness itself compiles.

#include "src/util/sync.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): writes the guarded field without holding mu_.
  void Increment() { ++value_; }

  int Get() {
    sampnn::MutexLock lock(mu_);
    return value_;
  }

 private:
  sampnn::Mutex mu_{"test.counter", 1000};
  int value_ SAMPNN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get();
}
