// Tests for the debug-build lock-rank validator (src/util/sync.{h,cc}).
//
// The validator is compiled out under NDEBUG (the tier-1 Release build), so
// the death tests GTEST_SKIP there; they run for real under the asan-ubsan
// Debug preset. Release builds are covered separately by
// scripts/check_release_symbols.sh, which proves the LockRank symbols are
// absent from the release archive.

#include "src/util/sync.h"

#include <thread>

#include "gtest/gtest.h"

namespace sampnn {
namespace {

#ifndef NDEBUG
constexpr bool kValidatorActive = true;
#else
constexpr bool kValidatorActive = false;
#endif

// Test ranks sit above every production rank in lockrank:: so these mutexes
// nest under anything the test infrastructure might hold.
constexpr int kLowRank = 1000;
constexpr int kHighRank = 1001;

TEST(LockRankTest, IncreasingRankAcquisitionIsAllowed) {
  Mutex low("test.low", kLowRank);
  Mutex high("test.high", kHighRank);
  MutexLock hold_low(low);
  MutexLock hold_high(high);
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 2);
#endif
}

TEST(LockRankTest, OutOfOrderReleaseIsAllowed) {
  // Rank discipline constrains acquisition order only; releasing the
  // lower-ranked lock first (while the higher one stays held) is legal.
  Mutex low("test.low", kLowRank);
  Mutex high("test.high", kHighRank);
  MutexLock hold_low(low);
  MutexLock hold_high(high);
  hold_low.Unlock();
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 1);
#endif
  hold_high.Unlock();
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 0);
#endif
}

TEST(LockRankTest, MutexLockUnlockLockRoundTrip) {
  Mutex mu("test.roundtrip", kLowRank);
  MutexLock lock(mu);
  lock.Unlock();
  lock.Lock();
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 1);
#endif
}

TEST(LockRankTest, TryLockSuccessTracksTheLock) {
  Mutex mu("test.trylock", kLowRank);
  ASSERT_TRUE(mu.try_lock());
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 1);
#endif
  mu.unlock();
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 0);
#endif
}

TEST(LockRankTest, FailedTryLockLeavesNothingHeld) {
  Mutex mu("test.trylock", kLowRank);
  mu.lock();
  std::thread contender([&mu] {
    EXPECT_FALSE(mu.try_lock());
#ifndef NDEBUG
    // The speculative push must have been rolled back.
    EXPECT_EQ(internal::LockRankHeldCount(), 0);
#endif
  });
  contender.join();
  mu.unlock();
}

TEST(LockRankTest, CondVarWaitKeepsBookkeepingExact) {
  // Wait() releases and re-acquires through Mutex::unlock/lock, so the
  // rank stack must show the lock held both before and after the wait.
  Mutex mu("test.cv", kLowRank);
  CondVar cv;
  bool ready = false;  // guarded by mu (annotation elided: local)
  MutexLock lock(mu);
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 1);
#endif
  std::thread producer([&] {
    MutexLock producer_lock(mu);
    ready = true;
    producer_lock.Unlock();
    cv.NotifyOne();
  });
  while (!ready) cv.Wait(mu);
#ifndef NDEBUG
  EXPECT_EQ(internal::LockRankHeldCount(), 1);
#endif
  lock.Unlock();
  producer.join();
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, OutOfRankAcquisitionAborts) {
  if (!kValidatorActive) {
    GTEST_SKIP() << "lock-rank validator compiled out under NDEBUG";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low("test.low", kLowRank);
  Mutex high("test.high", kHighRank);
  EXPECT_DEATH(
      {
        MutexLock hold_high(high);
        MutexLock hold_low(low);  // rank goes down: must abort
      },
      "lock-rank violation.*test\\.low.*while holding.*test\\.high");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  if (!kValidatorActive) {
    GTEST_SKIP() << "lock-rank validator compiled out under NDEBUG";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Equal-rank mutexes may never be held together (e.g. two serve worker
  // slots' token mutexes).
  Mutex a("test.peer_a", kLowRank);
  Mutex b("test.peer_b", kLowRank);
  EXPECT_DEATH(
      {
        MutexLock hold_a(a);
        MutexLock hold_b(b);
      },
      "lock-rank violation.*test\\.peer_b.*while holding.*test\\.peer_a");
}

TEST(LockRankDeathTest, ReentrantAcquisitionAborts) {
  if (!kValidatorActive) {
    GTEST_SKIP() << "lock-rank validator compiled out under NDEBUG";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu("test.reentrant", kLowRank);
  EXPECT_DEATH(
      {
        MutexLock first(mu);
        mu.lock();  // same thread, same mutex: must abort, not deadlock
      },
      "lock-rank violation: re-entrant acquire of.*test\\.reentrant");
}

TEST(LockRankDeathTest, ViolationNamesBothLocksAndTheDesignDoc) {
  if (!kValidatorActive) {
    GTEST_SKIP() << "lock-rank validator compiled out under NDEBUG";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The abort message is the debugging artifact: it must carry both lock
  // names, both ranks, and point at the rank table.
  Mutex low("test.low", kLowRank);
  Mutex high("test.high", kHighRank);
  EXPECT_DEATH(
      {
        MutexLock hold_high(high);
        MutexLock hold_low(low);
      },
      "\"test\\.low\" \\(rank 1000\\).*\"test\\.high\" \\(rank 1001\\).*"
      "DESIGN\\.md");
}

}  // namespace
}  // namespace sampnn
