#include "src/obs/phase_sampler.h"

#include <atomic>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

// The sampler is a process-wide singleton shared with every other test in
// this binary's process, so assertions always key on this thread's (or a
// child thread's) own slot rather than on global snapshot sizes.

PhaseSample SampleForTid(uint32_t tid) {
  for (const PhaseSample& s : PhaseSampler::Get().Snapshot()) {
    if (s.tid == tid) return s;
  }
  return PhaseSample{};
}

uint32_t CurrentTid() {
  // Registering is idempotent; grab this thread's slot to learn its tid via
  // the snapshot (tids are dense and stable).
  PhaseSampler::Get().SetCurrentThreadRole("test_main");
  ScopedPhase probe("probe", 0);
  for (const PhaseSample& s : PhaseSampler::Get().Snapshot()) {
    if (std::string(s.phase) == "probe") return s.tid;
  }
  return 0;
}

TEST(PhaseSamplerTest, ScopedPhaseSetsAndRestores) {
  const uint32_t tid = CurrentTid();
  ASSERT_NE(tid, 0u);
  {
    ScopedPhase outer("outer_phase", 11);
    PhaseSample s = SampleForTid(tid);
    EXPECT_STREQ(s.phase, "outer_phase");
    EXPECT_EQ(s.detail_id, 11u);
    {
      ScopedPhase inner("inner_phase", 22);
      s = SampleForTid(tid);
      EXPECT_STREQ(s.phase, "inner_phase");
      EXPECT_EQ(s.detail_id, 22u);
    }
    // Unwound: the outer tag (and its detail id) is back.
    s = SampleForTid(tid);
    EXPECT_STREQ(s.phase, "outer_phase");
    EXPECT_EQ(s.detail_id, 11u);
  }
}

TEST(PhaseSamplerTest, ThreadsGetDistinctSlotsAndRetireOnExit) {
  std::atomic<bool> release{false};
  std::thread child([&] {
    PhaseSampler::Get().SetCurrentThreadRole("child_role");
    ScopedPhase phase("child_phase", 99);
    while (!release.load()) std::this_thread::yield();
  });
  // Wait until the child registered and tagged itself.
  uint32_t tid = 0;
  for (int i = 0; i < 10000 && tid == 0; ++i) {
    for (const PhaseSample& s : PhaseSampler::Get().Snapshot()) {
      if (std::string(s.phase) == "child_phase") tid = s.tid;
    }
    if (tid == 0) std::this_thread::yield();
  }
  ASSERT_NE(tid, 0u);
  PhaseSample s = SampleForTid(tid);
  EXPECT_STREQ(s.role, "child_role");
  EXPECT_EQ(s.detail_id, 99u);

  release.store(true);
  child.join();
  // The joined thread's slot no longer appears in snapshots.
  EXPECT_EQ(SampleForTid(tid).tid, 0u);
}

TEST(PhaseSamplerTest, RenderTableListsRolesAndPhases) {
  PhaseSampler::Get().SetCurrentThreadRole("table_role");
  ScopedPhase phase("table_phase", 7);
  const std::string table = PhaseSampler::Get().RenderTable();
  EXPECT_NE(table.find("table_phase"), std::string::npos) << table;
  EXPECT_NE(table.find("7"), std::string::npos) << table;
}

}  // namespace
}  // namespace sampnn
