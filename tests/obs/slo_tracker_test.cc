// SloTracker windows are driven entirely by caller-supplied timestamps, so
// every test here is step-exact: Tick(t) with hand-picked t values plays the
// role a ManualClock plays in the serving tests.

#include "src/obs/slo_tracker.h"

#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/telemetry/metrics_registry.h"

namespace sampnn {
namespace {

class SloTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hist_ = &MetricsRegistry::Get().GetHistogram("test.slo.latency");
    hist_->Reset();
    violations_ = 0;
    terminals_ = 0;
  }

  SloTracker MakeTracker(int64_t window_ms = 1000, size_t slots = 10) {
    SloTracker::Options options;
    options.window_ms = window_ms;
    options.slots = slots;
    options.gauge_prefix = "test.slo";
    return SloTracker(
        hist_, [this] { return violations_.load(); },
        [this] { return terminals_.load(); }, options);
  }

  Histogram* hist_ = nullptr;
  std::atomic<uint64_t> violations_{0};
  std::atomic<uint64_t> terminals_{0};
};

TEST_F(SloTrackerTest, FirstTickPrimesWithoutCountingHistory) {
  // Traffic before the tracker's first tick is pre-window history: it must
  // baseline, not count.
  for (int i = 0; i < 50; ++i) hist_->Observe(10);
  violations_ = 5;
  terminals_ = 50;
  SloTracker tracker = MakeTracker();
  tracker.Tick(0);
  SloSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.window_count, 0u);
  EXPECT_EQ(snap.window_violations, 0u);
  EXPECT_DOUBLE_EQ(snap.violation_rate, 0.0);

  // A later tick with no new traffic stays empty.
  tracker.Tick(100);
  EXPECT_EQ(tracker.Snapshot().window_count, 0u);
}

TEST_F(SloTrackerTest, WindowedQuantilesAndViolationRate) {
  SloTracker tracker = MakeTracker();
  tracker.Tick(0);
  // 90 fast (2ms) + 10 slow (100ms) in the window; 1 violation out of 10
  // terminal outcomes.
  for (int i = 0; i < 90; ++i) hist_->Observe(2);
  for (int i = 0; i < 10; ++i) hist_->Observe(100);
  violations_ = 1;
  terminals_ = 10;
  tracker.Tick(50);

  const SloSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.window_count, 100u);
  EXPECT_EQ(snap.window_violations, 1u);
  EXPECT_DOUBLE_EQ(snap.violation_rate, 0.1);
  EXPECT_GE(snap.p50_ms, 2.0);
  EXPECT_LE(snap.p50_ms, 4.0);
  EXPECT_GE(snap.p99_ms, 64.0);   // in the slow observations' bucket
  EXPECT_LE(snap.p99_ms, 100.0);  // clamped to the window max
  EXPECT_EQ(snap.window_ms, 1000);

  // Gauges exported on the same tick.
  MetricsRegistry& reg = MetricsRegistry::Get();
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.slo.p50").Value(), snap.p50_ms);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.slo.p99").Value(), snap.p99_ms);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.slo.violation_rate").Value(), 0.1);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.slo.window_count").Value(), 100.0);
}

TEST_F(SloTrackerTest, OldSlotsSlideOutOfTheWindow) {
  SloTracker tracker = MakeTracker(/*window_ms=*/1000, /*slots=*/10);
  tracker.Tick(0);
  for (int i = 0; i < 20; ++i) hist_->Observe(8);
  violations_ = 2;
  terminals_ = 20;
  tracker.Tick(100);
  EXPECT_EQ(tracker.Snapshot().window_count, 20u);

  // Jump past the window: the old slots age out and the estimate empties.
  tracker.Tick(1200);
  tracker.Tick(1350);
  const SloSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.window_count, 0u);
  EXPECT_EQ(snap.window_violations, 0u);
  EXPECT_DOUBLE_EQ(snap.violation_rate, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_ms, 0.0);
}

TEST_F(SloTrackerTest, CounterDeltasSaturateAcrossResets) {
  SloTracker tracker = MakeTracker();
  violations_ = 10;
  terminals_ = 100;
  tracker.Tick(0);
  // Counters go backwards (a ResetAll ran): the delta must clamp to zero,
  // never wrap to ~2^64.
  violations_ = 0;
  terminals_ = 0;
  tracker.Tick(50);
  const SloSnapshot snap = tracker.Snapshot();
  EXPECT_EQ(snap.window_violations, 0u);
  EXPECT_DOUBLE_EQ(snap.violation_rate, 0.0);
}

TEST_F(SloTrackerTest, SuccessiveTicksAccumulateWithinTheWindow) {
  SloTracker tracker = MakeTracker();
  tracker.Tick(0);
  for (int i = 0; i < 5; ++i) hist_->Observe(4);
  tracker.Tick(30);
  for (int i = 0; i < 7; ++i) hist_->Observe(4);
  tracker.Tick(60);
  EXPECT_EQ(tracker.Snapshot().window_count, 12u);
}

TEST_F(SloTrackerTest, RenderMentionsTheHeadlineNumbers) {
  SloTracker tracker = MakeTracker();
  tracker.Tick(0);
  hist_->Observe(16);
  violations_ = 0;
  terminals_ = 1;
  tracker.Tick(10);
  const std::string text = tracker.Render();
  EXPECT_NE(text.find("window_ms=1000"), std::string::npos);
  EXPECT_NE(text.find("observations=1"), std::string::npos);
  EXPECT_NE(text.find("p99_ms="), std::string::npos);
  EXPECT_NE(text.find("violation_rate="), std::string::npos);
}

}  // namespace
}  // namespace sampnn
