// End-to-end introspection-plane tests (ISSUE acceptance): real HTTP GETs
// against the embedded server while a ManualClock-driven overload scenario
// runs, plus the zero-overhead guard proving a disabled plane opens no
// sockets and perturbs nothing.

#include "src/obs/statusz.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/inference_service.h"
#include "src/serve/model_backend.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"

namespace sampnn {
namespace {

// Minimal blocking HTTP/1.0 GET against 127.0.0.1:port. Returns the full
// response (status line + headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

Mlp TinyNet() {
  return std::move(Mlp::Create(MlpConfig::Uniform(/*input_dim=*/4,
                                                  /*output_dim=*/3,
                                                  /*depth=*/1, /*width=*/8)))
      .ValueOrDie("net");
}

std::vector<float> TinyInput() { return {0.1f, 0.2f, 0.3f, 0.4f}; }

// Backend that parks every Forward call while `hold` is set, standing in
// for a slow model so the test controls exactly when the queue drains.
class HoldBackend : public ModelBackend {
 public:
  const char* name() const override { return "hold"; }
  size_t input_dim() const override { return 4; }
  size_t output_dim() const override { return 3; }

  Status Forward(const Matrix& batch, const CancelContext& ctx,
                 ServeQuality /*quality*/, Matrix* logits) override {
    entered_rows_.fetch_add(batch.rows());
    while (hold_.load() && !ctx.token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ctx.token.cancelled()) return ctx.StopStatus();
    *logits = Matrix(batch.rows(), output_dim());
    return Status::OK();
  }

  void Release() { hold_.store(false); }
  size_t entered_rows() const { return entered_rows_.load(); }

 private:
  std::atomic<bool> hold_{true};
  std::atomic<size_t> entered_rows_{0};
};

template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms = 10000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(StatuszServerTest, StartServeStopStandalone) {
  StatuszServer::Options options;
  options.port = 0;  // ephemeral
  auto server = std::move(StatuszServer::Start(options)).ValueOrDie("statusz");
  ASSERT_GT(server->port(), 0);

  server->AddSection("custom", [] { return std::string("hello_section\n"); });
  const std::string statusz = HttpGet(server->port(), "/statusz");
  EXPECT_NE(statusz.find("200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("uptime:"), std::string::npos);
  EXPECT_NE(statusz.find("[custom]"), std::string::npos);
  EXPECT_NE(statusz.find("hello_section"), std::string::npos);
  EXPECT_NE(statusz.find("[workers]"), std::string::npos);

  EXPECT_NE(HttpGet(server->port(), "/metricsz").find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(server->port(), "/tracez").find("\"traceEvents\""),
            std::string::npos);
  EXPECT_NE(HttpGet(server->port(), "/healthz").find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(server->port(), "/nope").find("404 Not Found"),
            std::string::npos);
  EXPECT_GE(server->RequestsServed(), 5u);
}

TEST(StatuszServerTest, HealthCallbackDrives503) {
  StatuszServer::Options options;
  auto server = std::move(StatuszServer::Start(options)).ValueOrDie("statusz");
  std::atomic<bool> healthy{true};
  server->SetHealthCallback([&healthy] { return healthy.load(); });
  EXPECT_NE(HttpGet(server->port(), "/healthz").find("200 OK"),
            std::string::npos);
  healthy.store(false);
  EXPECT_NE(HttpGet(server->port(), "/healthz").find("503"),
            std::string::npos);
}

TEST(StatuszServerTest, OversizedRequestIsDroppedNotServed) {
  StatuszServer::Options options;
  options.max_request_bytes = 128;
  auto server = std::move(StatuszServer::Start(options)).ValueOrDie("statusz");
  // A request line longer than the bound: the server must drop the
  // connection (empty or truncated response) and keep serving afterwards.
  const std::string huge(1024, 'A');
  const std::string bad = HttpGet(server->port(), "/" + huge);
  EXPECT_EQ(bad.find("200 OK"), std::string::npos);
  EXPECT_GE(server->RequestsDropped(), 1u);
  EXPECT_NE(HttpGet(server->port(), "/healthz").find("200 OK"),
            std::string::npos);
}

// The ISSUE's acceptance scenario: a live /metricsz scrape during a
// ManualClock overload must return parseable Prometheus text containing the
// windowed SLO gauges, per-phase histograms with exemplar request ids, and
// the histogram overflow counter.
TEST(StatuszIntegrationTest, LiveMetricszDuringManualClockOverload) {
  SetTelemetryEnabled(false);  // statusz alone must light the metrics up
  MetricsRegistry::Get().ResetAll();
  ManualClock clock;
  auto backend = std::make_unique<HoldBackend>();
  HoldBackend* hold = backend.get();

  ServeOptions options;
  options.clock = &clock;
  options.queue_capacity = 4;
  options.workers = 1;
  options.max_batch = 1;
  options.watchdog_poll_ms = 1;  // fast SLO ticks
  options.statusz_port = 0;      // ephemeral
  options.slo_window_ms = 10'000;
  auto service =
      std::move(InferenceService::Create(std::move(backend), options))
          .ValueOrDie("service");
  const int port = service->statusz_port();
  ASSERT_GT(port, 0);

  // R0 wedges the worker; fill the queue; overflow sheds with a hint.
  std::vector<std::future<InferenceResult>> futures;
  futures.push_back(service->Submit(TinyInput(), Deadline::Never()));
  ASSERT_TRUE(WaitFor([&] { return hold->entered_rows() == 1; }));
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service->Submit(TinyInput(), Deadline::Never()));
  }
  EXPECT_GT(service->Stats().shed, 0u);

  // Overloaded: /healthz reports 503, /statusz shows the full queue.
  EXPECT_NE(HttpGet(port, "/healthz").find("503"), std::string::npos);
  const std::string statusz = HttpGet(port, "/statusz");
  EXPECT_NE(statusz.find("queue_occupancy: 4/4"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("quality_rung: degraded"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("serve_worker"), std::string::npos) << statusz;

  // Drain: release the gate, advance the service clock so latencies are
  // non-zero, and wait for every admitted future.
  clock.AdvanceMillis(7);
  hold->Release();
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_TRUE(r.status.ok() || r.status.IsResourceExhausted())
        << r.status.ToString();
  }

  // The SLO gauges appear once the watchdog has ticked past the traffic.
  ASSERT_TRUE(WaitFor([&] {
    return HttpGet(port, "/metricsz").find("serve.slo.p99") !=
           std::string::npos;
  }));
  const std::string metricsz = HttpGet(port, "/metricsz");
  // Prometheus text shape.
  EXPECT_NE(metricsz.find("# TYPE sampnn_serve_slo_p99 gauge"),
            std::string::npos);
  EXPECT_NE(metricsz.find("# HELP sampnn_serve_slo_p99 serve.slo.p99"),
            std::string::npos);
  // Per-phase latency histograms, with the exemplar request id on +Inf.
  EXPECT_NE(metricsz.find("sampnn_serve_phase_queue_ms_bucket"),
            std::string::npos);
  EXPECT_NE(metricsz.find("sampnn_serve_phase_backend_compute_ms_bucket"),
            std::string::npos);
  EXPECT_NE(metricsz.find("# {request_id=\""), std::string::npos);
  // The overflow counter is exported for every histogram.
  EXPECT_NE(metricsz.find("sampnn_serve_request_latency_ms_overflow"),
            std::string::npos);
  // The shed path exported the retry-after hint it handed to clients.
  EXPECT_NE(metricsz.find("sampnn_serve_retry_after_ms"), std::string::npos);
  EXPECT_GT(MetricsRegistry::Get().GetGauge("serve.retry_after_ms").Value(),
            0.0);

  // Healthy again after the drain.
  ASSERT_TRUE(WaitFor([&] {
    return HttpGet(port, "/healthz").find("200 OK") != std::string::npos;
  }));
  service->Stop();
  // Stopped: the plane stays up for post-mortem reads but reports draining.
  EXPECT_NE(HttpGet(port, "/healthz").find("503"), std::string::npos);
}

// Zero-overhead guard: telemetry off + statusz unset => no sockets, no
// serve metrics registered, and results identical to an observed run.
TEST(StatuszGuardTest, DisabledPlaneOpensNoSocketsAndRegistersNothing) {
  SetTelemetryEnabled(false);
  MetricsRegistry& reg = MetricsRegistry::Get();
  const uint64_t sockets_before = StatuszServer::SocketsOpenedForTest();
  const size_t counters_before = reg.Counters().size();
  const size_t gauges_before = reg.Gauges().size();
  const size_t histograms_before = reg.Histograms().size();

  {
    ManualClock clock;
    ServeOptions options;  // statusz_port = -1: plane off
    options.clock = &clock;
    auto service =
        std::move(InferenceService::Create(MakeDenseBackend(TinyNet()),
                                           options))
            .ValueOrDie("service");
    EXPECT_EQ(service->statusz_port(), -1);
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(service->Submit(TinyInput(), Deadline::Never()));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
    service->Stop();
  }

  EXPECT_EQ(StatuszServer::SocketsOpenedForTest(), sockets_before);
  EXPECT_EQ(reg.Counters().size(), counters_before);
  EXPECT_EQ(reg.Gauges().size(), gauges_before);
  EXPECT_EQ(reg.Histograms().size(), histograms_before);
}

TEST(StatuszGuardTest, ObservabilityDoesNotPerturbServing) {
  SetTelemetryEnabled(false);
  // Two identical ManualClock sessions over the same model, one dark and
  // one fully observed: logits, outcomes, and latencies must match bitwise
  // (observability reads clocks and bumps atomics; it never touches the
  // math or the scheduling decisions).
  auto run = [](int statusz_port) {
    ManualClock clock;
    ServeOptions options;
    options.clock = &clock;
    options.statusz_port = statusz_port;
    Mlp net = TinyNet();
    auto service = std::move(InferenceService::Create(
                                 MakeDenseBackend(std::move(net)), options))
                       .ValueOrDie("service");
    std::vector<InferenceResult> results;
    for (int i = 0; i < 12; ++i) {
      results.push_back(
          service->Submit(TinyInput(), Deadline::Never()).get());
    }
    service->Stop();
    return results;
  };

  const std::vector<InferenceResult> dark = run(-1);
  const std::vector<InferenceResult> observed = run(0);
  ASSERT_EQ(dark.size(), observed.size());
  for (size_t i = 0; i < dark.size(); ++i) {
    EXPECT_EQ(dark[i].status.code(), observed[i].status.code()) << i;
    EXPECT_EQ(dark[i].latency_ms, observed[i].latency_ms) << i;
    EXPECT_EQ(dark[i].predicted, observed[i].predicted) << i;
    ASSERT_EQ(dark[i].logits.size(), observed[i].logits.size()) << i;
    for (size_t j = 0; j < dark[i].logits.size(); ++j) {
      EXPECT_EQ(dark[i].logits[j], observed[i].logits[j]) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace sampnn
