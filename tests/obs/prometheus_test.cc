#include "src/obs/prometheus.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/telemetry/metrics_registry.h"

namespace sampnn {
namespace {

// Splits the exposition text into lines for structural checks.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusSanitizeTest, DotsAndIllegalCharsBecomeUnderscores) {
  EXPECT_EQ(PrometheusSanitizeName("serve.slo.p99"), "sampnn_serve_slo_p99");
  EXPECT_EQ(PrometheusSanitizeName("a-b c"), "sampnn_a_b_c");
  EXPECT_EQ(PrometheusSanitizeName("ok_name:x"), "sampnn_ok_name:x");
}

TEST(PrometheusRenderTest, CountersAndGaugesCarryHelpWithOriginalName) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("prom.test.counter").Add(7);
  reg.GetGauge("prom.test.gauge").Set(2.5);
  const std::string text = PrometheusRender(reg);
  // The HELP line preserves the dotted in-code name so operators can grep
  // for what the source calls the metric.
  EXPECT_NE(text.find("# HELP sampnn_prom_test_counter prom.test.counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sampnn_prom_test_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("sampnn_prom_test_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sampnn_prom_test_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("sampnn_prom_test_gauge 2.5"), std::string::npos);
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulativeAndConsistent) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  Histogram& h = reg.GetHistogram("prom.test.hist");
  h.Reset();
  h.Observe(1);
  h.Observe(3);
  h.Observe(3);
  h.Observe(200);
  h.Observe(uint64_t{1} << 50);  // overflow
  const std::string text = PrometheusRender(reg);

  // Parse this histogram's bucket series: le values must be non-decreasing
  // in cumulative count, and the +Inf bucket must equal _count.
  uint64_t prev_cum = 0;
  uint64_t inf_count = 0, count = 0, overflow = 0;
  bool saw_bucket = false;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("sampnn_prom_test_hist_bucket{le=\"+Inf\"}", 0) == 0) {
      inf_count = std::stoull(line.substr(line.rfind("} ") + 2));
    } else if (line.rfind("sampnn_prom_test_hist_bucket{", 0) == 0) {
      const uint64_t cum = std::stoull(line.substr(line.rfind("} ") + 2));
      EXPECT_GE(cum, prev_cum) << line;
      prev_cum = cum;
      saw_bucket = true;
    } else if (line.rfind("sampnn_prom_test_hist_count ", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind("sampnn_prom_test_hist_overflow ", 0) == 0) {
      overflow = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(inf_count, 5u);  // +Inf includes the overflow observation
  EXPECT_EQ(prev_cum, 4u);   // finite buckets hold everything else
  EXPECT_EQ(overflow, 1u);
}

TEST(PrometheusRenderTest, ExemplarRendersInOpenMetricsSyntax) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  Histogram& h = reg.GetHistogram("prom.test.exemplar_hist");
  h.Reset();
  h.ObserveWithExemplar(10, /*id=*/7);
  h.ObserveWithExemplar(90, /*id=*/42);  // slowest: becomes the exemplar
  const std::string text = PrometheusRender(reg);
  EXPECT_NE(text.find("sampnn_prom_test_exemplar_hist_bucket{le=\"+Inf\"} 2 "
                      "# {request_id=\"42\"} 90"),
            std::string::npos)
      << text;
}

TEST(PrometheusRenderTest, HistogramWithoutExemplarOmitsAnnotation) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  Histogram& h = reg.GetHistogram("prom.test.plain_hist");
  h.Reset();
  h.Observe(4);
  const std::string text = PrometheusRender(reg);
  const size_t pos = text.find("sampnn_prom_test_plain_hist_bucket{le=\"+Inf\"}");
  ASSERT_NE(pos, std::string::npos);
  const std::string line = text.substr(pos, text.find('\n', pos) - pos);
  EXPECT_EQ(line.find("request_id"), std::string::npos) << line;
}

}  // namespace
}  // namespace sampnn
