#include "src/lifecycle/drift_detector.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/resilience/fault_injector.h"
#include "src/tensor/matrix.h"

namespace sampnn {
namespace {

DriftDetectorOptions QuietOptions() {
  DriftDetectorOptions options;
  options.z_threshold = 2.0;
  options.ewma_alpha = 0.5;
  options.min_observations = 8;
  options.obs_enabled = [] { return false; };
  return options;
}

// Reference with per-feature spread: feature j takes values j, j+1, j+2, j+3
// across four rows (mean j+1.5, sigma ~1.118).
Matrix SpreadReference(size_t features = 4) {
  Matrix reference(4, features);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t j = 0; j < features; ++j) {
      reference(r, j) = static_cast<float>(j + r);
    }
  }
  return reference;
}

std::vector<float> Row(float value, size_t dim = 4) {
  return std::vector<float>(dim, value);
}

DriftDetector MakeDetector(const Matrix& reference,
                           DriftDetectorOptions options = QuietOptions()) {
  return std::move(DriftDetector::Create(reference, options))
      .ValueOrDie("detector");
}

class DriftDetectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::ClearGlobal(); }
};

TEST_F(DriftDetectorTest, CreateRejectsEmptyReferenceAndBadOptions) {
  EXPECT_TRUE(DriftDetector::Create(Matrix(), QuietOptions())
                  .status()
                  .IsInvalidArgument());
  DriftDetectorOptions bad_z = QuietOptions();
  bad_z.z_threshold = 0.0;
  EXPECT_TRUE(DriftDetector::Create(SpreadReference(), bad_z)
                  .status()
                  .IsInvalidArgument());
  DriftDetectorOptions bad_alpha = QuietOptions();
  bad_alpha.ewma_alpha = 1.5;
  EXPECT_TRUE(DriftDetector::Create(SpreadReference(), bad_alpha)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DriftDetectorTest, ScoreStartsAtZeroAndMatchingTrafficNeverTrips) {
  DriftDetector detector = MakeDetector(SpreadReference());
  EXPECT_EQ(detector.score(), 0.0);
  // Serve rows drawn from the reference itself, well past min_observations.
  const Matrix reference = SpreadReference();
  for (int pass = 0; pass < 16; ++pass) {
    for (size_t r = 0; r < reference.rows(); ++r) {
      std::vector<float> row(reference.cols());
      for (size_t j = 0; j < row.size(); ++j) row[j] = reference(r, j);
      detector.Observe(row);
    }
    EXPECT_FALSE(detector.Tripped()) << "pass " << pass;
  }
  // The EWMA hovers around the reference mean: score stays well inside the
  // threshold even though individual rows sit a full sigma away from it.
  EXPECT_LT(detector.score(), 2.0);
  EXPECT_EQ(detector.stats().trips, 0u);
}

TEST_F(DriftDetectorTest, PersistentShiftTripsOnceMinObservationsAreMet) {
  DriftDetector detector = MakeDetector(SpreadReference());
  // Every feature shifted ~20 sigma: tripping is a question of when, and
  // "when" must respect min_observations.
  for (uint64_t i = 0; i < 7; ++i) {
    detector.Observe(Row(25.0f));
    EXPECT_FALSE(detector.Tripped()) << "observation " << i;
  }
  detector.Observe(Row(25.0f));  // 8th row: past the floor
  EXPECT_TRUE(detector.Tripped());
  EXPECT_EQ(detector.stats().trips, 1u);
  // Holding in the tripped state is not a new rising edge.
  detector.Observe(Row(25.0f));
  EXPECT_TRUE(detector.Tripped());
  EXPECT_EQ(detector.stats().trips, 1u);
}

TEST_F(DriftDetectorTest, MalformedRowsAreIgnored) {
  DriftDetector detector = MakeDetector(SpreadReference());
  detector.Observe(Row(25.0f, /*dim=*/3));   // too narrow
  detector.Observe(Row(25.0f, /*dim=*/5));   // too wide
  EXPECT_EQ(detector.stats().observed, 0u);
  EXPECT_EQ(detector.score(), 0.0);
}

TEST_F(DriftDetectorTest, RefreezeAdoptsTheShiftAndArrestsReTripping) {
  DriftDetector detector = MakeDetector(SpreadReference());
  for (int i = 0; i < 32; ++i) detector.Observe(Row(25.0f));
  ASSERT_TRUE(detector.Tripped());

  detector.Refreeze();
  EXPECT_FALSE(detector.Tripped());
  EXPECT_EQ(detector.stats().refreezes, 1u);
  EXPECT_LT(detector.score(), 0.1);

  // The same shifted distribution keeps flowing: the refrozen reference
  // owns it now, so the detector must not thrash back into a trip.
  for (int i = 0; i < 32; ++i) {
    detector.Observe(Row(25.0f));
    EXPECT_FALSE(detector.Tripped());
  }
  EXPECT_EQ(detector.stats().trips, 1u);
}

TEST_F(DriftDetectorTest, InjectedDriftSpikeForcesATripUntilRefrozen) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("drift-spike@0")).value());
  DriftDetector detector = MakeDetector(SpreadReference());
  // No observations at all — the injected spike alone trips the detector,
  // and the forced trip latches even though the fault fires only once.
  EXPECT_TRUE(detector.Tripped());
  EXPECT_TRUE(detector.Tripped());
  EXPECT_EQ(detector.stats().trips, 1u);
  detector.Refreeze();
  EXPECT_FALSE(detector.Tripped());
  EXPECT_EQ(detector.stats().trips, 1u);
}

TEST_F(DriftDetectorTest, FromEnvParsesTheDriftKnobs) {
  ::setenv("SAMPNN_LIFECYCLE_DRIFT_Z", "2.5", 1);
  ::setenv("SAMPNN_LIFECYCLE_DRIFT_ALPHA", "0.25", 1);
  ::setenv("SAMPNN_LIFECYCLE_DRIFT_MIN_OBS", "17", 1);
  const DriftDetectorOptions options = DriftDetectorOptions::FromEnv();
  ::unsetenv("SAMPNN_LIFECYCLE_DRIFT_Z");
  ::unsetenv("SAMPNN_LIFECYCLE_DRIFT_ALPHA");
  ::unsetenv("SAMPNN_LIFECYCLE_DRIFT_MIN_OBS");
  EXPECT_DOUBLE_EQ(options.z_threshold, 2.5);
  EXPECT_DOUBLE_EQ(options.ewma_alpha, 0.25);
  EXPECT_EQ(options.min_observations, 17u);
  EXPECT_DOUBLE_EQ(DriftDetectorOptions::FromEnv().z_threshold, 4.0);
}

}  // namespace
}  // namespace sampnn
