// FineTuneLoop state-machine tests, fully deterministic: time comes from a
// ManualClock, drift from scripted request rows, divergence / canary
// regressions from injected faults, and SLO deltas from a scripted
// slo_source. Each test drives TickOnce() by hand — exactly what the
// production Start() thread calls.

#include "src/lifecycle/fine_tune_loop.h"

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/lifecycle/request_log.h"
#include "src/nn/mlp.h"
#include "src/registry/model_registry.h"
#include "src/resilience/fault_injector.h"
#include "src/serve/model_backend.h"

namespace sampnn {
namespace {

MlpConfig NetConfig(uint64_t seed = 42) {
  MlpConfig config = MlpConfig::Uniform(/*input_dim=*/4, /*output_dim=*/3,
                                        /*depth=*/1, /*width=*/8);
  config.seed = seed;
  return config;
}

std::unique_ptr<Trainer> MakeStandardTrainer() {
  TrainerOptions options;
  options.kind = TrainerKind::kStandard;
  options.learning_rate = 1e-3f;
  return std::move(MakeTrainer(NetConfig(), options)).ValueOrDie("trainer");
}

std::shared_ptr<ModelRegistry> MakeRegistry(RegistryOptions options = {}) {
  Mlp net = std::move(Mlp::Create(NetConfig())).ValueOrDie("net");
  auto factory = [](Mlp model) -> StatusOr<std::shared_ptr<ModelBackend>> {
    return std::shared_ptr<ModelBackend>(MakeDenseBackend(std::move(model)));
  };
  return std::shared_ptr<ModelRegistry>(
      std::move(ModelRegistry::Create(MakeDenseBackend(std::move(net)),
                                      factory, options))
          .ValueOrDie("registry")
          .release());
}

std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sampnn_lifecycle_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Offers `n` labeled rows of constant `value` — a persistent distribution
// shift relative to the all-zeros drift reference.
void OfferLabeledRows(RequestLog& log, size_t n, float value) {
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> row(4, value);
    const uint64_t seq = log.Offer("tenant-a", row);
    ASSERT_NE(seq, 0u);
    ASSERT_TRUE(log.Label(seq, static_cast<int32_t>(i % 3)).ok());
  }
}

class FineTuneLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ScratchDir(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    log_ = RequestLog::Create([] {
      RequestLogOptions options;
      options.capacity = 1024;
      options.obs_enabled = [] { return false; };
      return options;
    }());
    registry_ = MakeRegistry();
  }

  void TearDown() override {
    FaultInjector::ClearGlobal();
    std::filesystem::remove_all(dir_);
  }

  FineTuneLoopOptions LoopOptions() {
    FineTuneLoopOptions options;
    options.checkpoint_dir = dir_;
    options.poll_ms = 1;
    options.demotion_window_ms = 1000;
    options.fine_tune_batches = 4;
    options.batch_size = 8;
    options.checkpoint_every = 2;
    options.min_labeled = 24;
    options.canary_rows = 8;
    options.drift.z_threshold = 2.0;
    options.drift.ewma_alpha = 0.5;
    options.drift.min_observations = 8;
    options.drift.obs_enabled = [] { return false; };
    options.obs_enabled = [] { return false; };
    options.clock = &clock_;
    return options;
  }

  std::unique_ptr<FineTuneLoop> MakeLoop(FineTuneLoopOptions options) {
    // All-zeros reference: any constant nonzero traffic is a large shift.
    return std::move(FineTuneLoop::Create(MakeStandardTrainer(), log_,
                                          registry_, Matrix(8, 4), options))
        .ValueOrDie("loop");
  }

  ManualClock clock_{1000};
  std::string dir_;
  std::shared_ptr<RequestLog> log_;
  std::shared_ptr<ModelRegistry> registry_;
};

TEST_F(FineTuneLoopTest, CreateValidatesItsArguments) {
  EXPECT_TRUE(FineTuneLoop::Create(nullptr, log_, registry_, Matrix(8, 4),
                                   LoopOptions())
                  .status()
                  .IsInvalidArgument());

  FineTuneLoopOptions no_dir = LoopOptions();
  no_dir.checkpoint_dir.clear();
  EXPECT_TRUE(FineTuneLoop::Create(MakeStandardTrainer(), log_, registry_,
                                   Matrix(8, 4), no_dir)
                  .status()
                  .IsInvalidArgument());

  FineTuneLoopOptions canary_eats_pool = LoopOptions();
  canary_eats_pool.min_labeled = 8;
  canary_eats_pool.canary_rows = 8;
  EXPECT_TRUE(FineTuneLoop::Create(MakeStandardTrainer(), log_, registry_,
                                   Matrix(8, 4), canary_eats_pool)
                  .status()
                  .IsInvalidArgument());

  // Reference width must match the model's input dim (4).
  EXPECT_TRUE(FineTuneLoop::Create(MakeStandardTrainer(), log_, registry_,
                                   Matrix(8, 5), LoopOptions())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(FineTuneLoopTest, IdleWithoutDriftEvenWhenThePoolIsFull) {
  auto loop = MakeLoop(LoopOptions());
  // Plenty of labeled traffic, but it matches the reference: no round.
  OfferLabeledRows(*log_, 64, 0.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  const LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.state, LifecycleState::kIdle);
  EXPECT_GE(stats.pool_size, 24u);
  EXPECT_EQ(registry_->live_version(), 1u);
}

TEST_F(FineTuneLoopTest, DriftTripFineTunesPromotesAndClosesTheWindowClean) {
  auto loop = MakeLoop(LoopOptions());
  OfferLabeledRows(*log_, 32, 1.0f);

  ASSERT_TRUE(loop->TickOnce().ok());
  LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.diverged, 0u);
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.state, LifecycleState::kWatching);
  EXPECT_EQ(stats.pool_size, 0u);

  // The registry flipped through the hardened gate, stamped with the drift
  // cause and the checkpoint provenance the loop wrote.
  EXPECT_EQ(registry_->live_version(), 2u);
  const auto live = registry_->Current();
  EXPECT_EQ(live->provenance.cause, "drift");
  EXPECT_NE(live->provenance.checkpoint_path.find("ckpt-"),
            std::string::npos);

  // Inside the demotion window nothing regresses (no slo_source at all):
  // the window must stay open until the clock passes it.
  clock_.AdvanceMillis(500);
  ASSERT_TRUE(loop->TickOnce().ok());
  EXPECT_EQ(loop->stats().state, LifecycleState::kWatching);

  clock_.AdvanceMillis(501);
  ASSERT_TRUE(loop->TickOnce().ok());
  stats = loop->stats();
  EXPECT_EQ(stats.state, LifecycleState::kIdle);
  EXPECT_EQ(stats.windows_clean, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);

  // The detector refroze onto the shifted distribution: the same traffic
  // must not re-trip into a promotion storm.
  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  EXPECT_EQ(loop->stats().rounds, 1u);
  EXPECT_EQ(registry_->live_version(), 2u);
}

TEST_F(FineTuneLoopTest, DivergedRoundIsStructurallyUnpromotable) {
  auto loop = MakeLoop(LoopOptions());
  OfferLabeledRows(*log_, 32, 1.0f);
  // The first fine-tune Step poisons a gradient: the sentinel must catch
  // it, the round must abandon, and nothing may reach the registry.
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("grad-nan@0")).value());

  ASSERT_TRUE(loop->TickOnce().ok());
  const LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.diverged, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.state, LifecycleState::kIdle);
  EXPECT_EQ(stats.pool_size, 0u);
  EXPECT_EQ(registry_->live_version(), 1u);

  // The divergence abandoned the drift episode (refreeze): the same
  // shifted traffic does not immediately re-enter the same divergence.
  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  EXPECT_EQ(loop->stats().rounds, 1u);
  EXPECT_EQ(registry_->live_version(), 1u);
}

TEST_F(FineTuneLoopTest, InjectedCanaryRegressionBlocksPromotionThenRetries) {
  auto loop = MakeLoop(LoopOptions());
  OfferLabeledRows(*log_, 32, 1.0f);
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("canary-regress@0")).value());

  ASSERT_TRUE(loop->TickOnce().ok());
  LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.rejected_canary, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.state, LifecycleState::kIdle);
  EXPECT_EQ(registry_->live_version(), 1u);

  // A canary rejection does NOT refreeze — the drift is real and still
  // unserved. Once the pool refills, the loop retries and (the injected
  // fault now spent) promotes.
  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  stats = loop->stats();
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(registry_->live_version(), 2u);
}

TEST_F(FineTuneLoopTest, RegistryGateRejectionIsARecordedOutcomeNotAnError) {
  RegistryOptions registry_options;
  registry_options.promote_fault_spec = "promote-corrupt@1";
  registry_ = MakeRegistry(registry_options);
  auto loop = MakeLoop(LoopOptions());
  OfferLabeledRows(*log_, 32, 1.0f);

  ASSERT_TRUE(loop->TickOnce().ok());  // rejection, not a tick failure
  LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.rejected_registry, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(registry_->live_version(), 1u);
  EXPECT_EQ(registry_->stats().rejected_corrupt, 1u);

  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  EXPECT_EQ(loop->stats().promotions, 1u);
  EXPECT_EQ(registry_->live_version(), 2u);
}

TEST_F(FineTuneLoopTest, P99RegressionInTheWindowAutoRollsBack) {
  auto slo = std::make_shared<SloSnapshot>();
  slo->p99_ms = 10.0;
  slo->window_count = 100;
  FineTuneLoopOptions options = LoopOptions();
  options.slo_source = [slo] { return *slo; };
  auto loop = MakeLoop(options);

  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  ASSERT_EQ(loop->stats().promotions, 1u);
  ASSERT_EQ(registry_->live_version(), 2u);

  // The promoted model tanks tail latency: p99 jumps past baseline * 2.
  slo->p99_ms = 50.0;
  clock_.AdvanceMillis(100);  // still inside the demotion window
  ASSERT_TRUE(loop->TickOnce().ok());
  const LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.windows_clean, 0u);
  EXPECT_EQ(stats.state, LifecycleState::kIdle);
  EXPECT_EQ(registry_->live_version(), 1u);  // displaced version restored
  EXPECT_EQ(registry_->stats().rollbacks, 1u);
  EXPECT_EQ(registry_->LastPromotion().outcome, PromotionOutcome::kRolledBack);
}

TEST_F(FineTuneLoopTest, ViolationRateRegressionAlsoRollsBack) {
  auto slo = std::make_shared<SloSnapshot>();
  slo->p99_ms = 10.0;
  slo->violation_rate = 0.01;
  slo->window_count = 100;
  FineTuneLoopOptions options = LoopOptions();
  options.slo_source = [slo] { return *slo; };
  auto loop = MakeLoop(options);

  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  ASSERT_EQ(registry_->live_version(), 2u);

  // p99 holds, but the deadline-violation rate explodes past the +0.2 bound.
  slo->violation_rate = 0.5;
  clock_.AdvanceMillis(100);
  ASSERT_TRUE(loop->TickOnce().ok());
  EXPECT_EQ(loop->stats().rollbacks, 1u);
  EXPECT_EQ(registry_->live_version(), 1u);
}

TEST_F(FineTuneLoopTest, HealthySloKeepsThePromotion) {
  auto slo = std::make_shared<SloSnapshot>();
  slo->p99_ms = 10.0;
  slo->violation_rate = 0.01;
  slo->window_count = 100;
  FineTuneLoopOptions options = LoopOptions();
  options.slo_source = [slo] { return *slo; };
  auto loop = MakeLoop(options);

  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  ASSERT_EQ(registry_->live_version(), 2u);

  // Mild wobble well inside both bounds.
  slo->p99_ms = 12.0;
  slo->violation_rate = 0.05;
  clock_.AdvanceMillis(1001);
  ASSERT_TRUE(loop->TickOnce().ok());
  const LifecycleStats stats = loop->stats();
  EXPECT_EQ(stats.windows_clean, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(registry_->live_version(), 2u);
}

TEST_F(FineTuneLoopTest, StatuszSectionRendersTheStateMachine) {
  auto loop = MakeLoop(LoopOptions());
  OfferLabeledRows(*log_, 32, 1.0f);
  ASSERT_TRUE(loop->TickOnce().ok());
  const std::string section = loop->RenderStatuszSection();
  EXPECT_NE(section.find("state: watching"), std::string::npos) << section;
  EXPECT_NE(section.find("promotions=1"), std::string::npos) << section;
  EXPECT_NE(section.find("trips=1"), std::string::npos) << section;
  EXPECT_NE(section.find("displaced=v1"), std::string::npos) << section;
}

TEST_F(FineTuneLoopTest, StartRunsTicksInTheBackgroundAndStopJoins) {
  FineTuneLoopOptions options = LoopOptions();
  options.clock = nullptr;  // real clock: poll_ms=1 sleeps for real
  auto loop = MakeLoop(options);
  ASSERT_TRUE(loop->Start().ok());
  EXPECT_TRUE(loop->Start().IsFailedPrecondition());  // already running
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (loop->stats().ticks < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop->Stop();
  EXPECT_GE(loop->stats().ticks, 3u);
  loop->Stop();  // idempotent
}

TEST_F(FineTuneLoopTest, FromEnvParsesTheLifecycleKnobs) {
  ::setenv("SAMPNN_LIFECYCLE_POLL_MS", "7", 1);
  ::setenv("SAMPNN_LIFECYCLE_FT_BATCHES", "11", 1);
  ::setenv("SAMPNN_LIFECYCLE_P99_FACTOR", "3.5", 1);
  const FineTuneLoopOptions options = FineTuneLoopOptions::FromEnv();
  ::unsetenv("SAMPNN_LIFECYCLE_POLL_MS");
  ::unsetenv("SAMPNN_LIFECYCLE_FT_BATCHES");
  ::unsetenv("SAMPNN_LIFECYCLE_P99_FACTOR");
  EXPECT_EQ(options.poll_ms, 7);
  EXPECT_EQ(options.fine_tune_batches, 11u);
  EXPECT_DOUBLE_EQ(options.max_p99_regression, 3.5);
  EXPECT_EQ(FineTuneLoopOptions::FromEnv().poll_ms, 200);
}

}  // namespace
}  // namespace sampnn
