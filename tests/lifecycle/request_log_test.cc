#include "src/lifecycle/request_log.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/resilience/fault_injector.h"

namespace sampnn {
namespace {

RequestLogOptions QuietOptions(size_t capacity = 16,
                               uint64_t sample_every = 1) {
  RequestLogOptions options;
  options.capacity = capacity;
  options.sample_every = sample_every;
  options.obs_enabled = [] { return false; };
  return options;
}

std::vector<float> Row(float value, size_t dim = 4) {
  return std::vector<float>(dim, value);
}

class RequestLogTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::ClearGlobal(); }
};

TEST_F(RequestLogTest, OfferAssignsStrictlyIncreasingSequenceNumbers) {
  auto log = RequestLog::Create(QuietOptions());
  EXPECT_EQ(log->Offer("a", Row(0.1f)), 1u);
  EXPECT_EQ(log->Offer("b", Row(0.2f)), 2u);
  EXPECT_EQ(log->Offer("a", Row(0.3f)), 3u);
  const RequestLogStats stats = log->stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.sampled, 3u);
  EXPECT_EQ(stats.buffered, 3u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(RequestLogTest, SamplingAdmitsOneInNAndReturnsZeroOtherwise) {
  auto log = RequestLog::Create(QuietOptions(16, /*sample_every=*/3));
  size_t admitted = 0;
  for (int i = 0; i < 9; ++i) {
    if (log->Offer("a", Row(1.0f)) != 0) ++admitted;
  }
  EXPECT_EQ(admitted, 3u);
  const RequestLogStats stats = log->stats();
  EXPECT_EQ(stats.offered, 9u);
  EXPECT_EQ(stats.sampled, 3u);
}

TEST_F(RequestLogTest, FullRingEvictsOldestAndCountsDrops) {
  auto log = RequestLog::Create(QuietOptions(/*capacity=*/2));
  log->Offer("a", Row(1.0f));
  log->Offer("a", Row(2.0f));
  log->Offer("a", Row(3.0f));  // evicts seq 1
  const RequestLogStats stats = log->stats();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.buffered, 2u);
  const auto rows = log->Drain(10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].seq, 2u);
  EXPECT_EQ(rows[1].seq, 3u);
  EXPECT_FLOAT_EQ(rows[0].features[0], 2.0f);
}

TEST_F(RequestLogTest, LabelJoinsOntoBufferedRowsBySeq) {
  auto log = RequestLog::Create(QuietOptions());
  const uint64_t s1 = log->Offer("a", Row(1.0f));
  const uint64_t s2 = log->Offer("a", Row(2.0f));
  ASSERT_TRUE(log->Label(s2, 7).ok());
  const auto rows = log->Drain(10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].seq, s1);
  EXPECT_EQ(rows[0].label, -1);  // never labeled: drift-only data
  EXPECT_EQ(rows[1].label, 7);
  EXPECT_EQ(log->stats().labeled, 1u);
}

TEST_F(RequestLogTest, LabelMissesAreTypedNotFound) {
  auto log = RequestLog::Create(QuietOptions(/*capacity=*/2));
  EXPECT_TRUE(log->Label(0, 1).IsNotFound());  // sampled out
  const uint64_t seq = log->Offer("a", Row(1.0f));
  log->Drain(10);
  EXPECT_TRUE(log->Label(seq, 1).IsNotFound());  // already drained
  log->Offer("a", Row(2.0f));
  log->Offer("a", Row(3.0f));
  log->Offer("a", Row(4.0f));  // evicts the first of the three
  EXPECT_TRUE(log->Label(2, 1).IsNotFound());  // evicted
  EXPECT_TRUE(log->Label(99, 1).IsNotFound());  // never existed
}

TEST_F(RequestLogTest, DrainIsOldestFirstBoundedAndPermanent) {
  auto log = RequestLog::Create(QuietOptions());
  for (int i = 0; i < 5; ++i) log->Offer("a", Row(static_cast<float>(i)));
  const auto first = log->Drain(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].seq, 1u);
  EXPECT_EQ(first[1].seq, 2u);
  const auto rest = log->Drain(10);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].seq, 3u);
  EXPECT_EQ(log->Drain(10).size(), 0u);
  EXPECT_EQ(log->stats().drained, 5u);
}

TEST_F(RequestLogTest, StreamStallFaultDropsTheBufferExactlyOnce) {
  FaultInjector::InstallGlobal(
      std::move(FaultInjector::Parse("stream-stall@0")).value());
  auto log = RequestLog::Create(QuietOptions());
  for (int i = 0; i < 4; ++i) log->Offer("a", Row(1.0f));
  // The armed stall starves this drain and discards what was buffered.
  EXPECT_EQ(log->Drain(10).size(), 0u);
  RequestLogStats stats = log->stats();
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.dropped, 4u);
  EXPECT_EQ(stats.buffered, 0u);
  // The fault is spent: subsequent traffic flows normally.
  log->Offer("a", Row(2.0f));
  EXPECT_EQ(log->Drain(10).size(), 1u);
  EXPECT_EQ(log->stats().stalls, 1u);
}

TEST_F(RequestLogTest, ConcurrentOfferLabelDrainConserveRows) {
  // Producers, a labeler, and a consumer overlap freely; afterwards every
  // sampled row is accounted for: drained + buffered + dropped.
  auto log = RequestLog::Create(QuietOptions(/*capacity=*/64));
  constexpr int kProducers = 4;
  constexpr int kRowsPerProducer = 500;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> drained_total{0};

  std::thread consumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      drained_total.fetch_add(log->Drain(8).size(),
                              std::memory_order_relaxed);
    }
    drained_total.fetch_add(log->Drain(1024).size(),
                            std::memory_order_relaxed);
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kRowsPerProducer; ++i) {
        const uint64_t seq =
            log->Offer("tenant-" + std::to_string(p), Row(0.5f));
        if (seq != 0 && i % 3 == 0) {
          // The row may already be drained or evicted — exactly the contract.
          (void)log->Label(seq, i % 10);  // status-ignored: best-effort
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  consumer.join();

  const RequestLogStats stats = log->stats();
  EXPECT_EQ(stats.offered,
            static_cast<uint64_t>(kProducers) * kRowsPerProducer);
  EXPECT_EQ(stats.sampled, stats.drained + stats.dropped + stats.buffered);
  EXPECT_EQ(stats.drained, drained_total.load());
}

TEST_F(RequestLogTest, FromEnvParsesTheLifecycleKnobs) {
  ::setenv("SAMPNN_LIFECYCLE_LOG_CAP", "99", 1);
  ::setenv("SAMPNN_LIFECYCLE_SAMPLE_EVERY", "4", 1);
  const RequestLogOptions options = RequestLogOptions::FromEnv();
  ::unsetenv("SAMPNN_LIFECYCLE_LOG_CAP");
  ::unsetenv("SAMPNN_LIFECYCLE_SAMPLE_EVERY");
  EXPECT_EQ(options.capacity, 99u);
  EXPECT_EQ(options.sample_every, 4u);
  EXPECT_EQ(RequestLogOptions::FromEnv().capacity, 4096u);
}

}  // namespace
}  // namespace sampnn
