#include "src/cnn/feature_extractor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

FeatureExtractorConfig SmallConfig() {
  FeatureExtractorConfig cfg;
  cfg.input = {1, 8, 8};
  cfg.stem_channels = 4;
  cfg.num_blocks = 1;
  cfg.seed = 42;
  return cfg;
}

TEST(FeatureExtractorTest, CreateValidates) {
  FeatureExtractorConfig cfg = SmallConfig();
  cfg.input = {0, 0, 0};
  EXPECT_TRUE(FeatureExtractor::Create(cfg).status().IsInvalidArgument());
  cfg = SmallConfig();
  cfg.stem_channels = 0;
  EXPECT_TRUE(FeatureExtractor::Create(cfg).status().IsInvalidArgument());
}

TEST(FeatureExtractorTest, FeatureDimFollowsPooling) {
  auto fx = std::move(FeatureExtractor::Create(SmallConfig())).value();
  // 8x8 -> stem conv (same) -> pool -> 4x4 -> block (same) -> pool -> 2x2.
  EXPECT_EQ(fx.output_shape().channels, 4u);
  EXPECT_EQ(fx.output_shape().height, 2u);
  EXPECT_EQ(fx.output_shape().width, 2u);
  EXPECT_EQ(fx.feature_dim(), 16u);
}

TEST(FeatureExtractorTest, ForwardShapeAndFiniteness) {
  auto fx = std::move(FeatureExtractor::Create(SmallConfig())).value();
  Rng rng(1);
  Matrix x = Matrix::RandomUniform(5, 64, rng, 0.0f, 1.0f);
  FeatureExtractor::Workspace ws;
  const Matrix& feats = fx.Forward(x, &ws);
  EXPECT_EQ(feats.rows(), 5u);
  EXPECT_EQ(feats.cols(), fx.feature_dim());
  for (size_t i = 0; i < feats.size(); ++i) {
    EXPECT_TRUE(std::isfinite(feats.data()[i]));
    EXPECT_GE(feats.data()[i], 0.0f);  // final relu + max pool
  }
}

TEST(FeatureExtractorTest, DeterministicInSeed) {
  auto fx1 = std::move(FeatureExtractor::Create(SmallConfig())).value();
  auto fx2 = std::move(FeatureExtractor::Create(SmallConfig())).value();
  Rng rng(2);
  Matrix x = Matrix::RandomUniform(3, 64, rng, 0.0f, 1.0f);
  FeatureExtractor::Workspace ws1, ws2;
  EXPECT_TRUE(fx1.Forward(x, &ws1).AllClose(fx2.Forward(x, &ws2), 0.0f));
}

TEST(FeatureExtractorTest, NumParamsCountsAllConvs) {
  auto fx = std::move(FeatureExtractor::Create(SmallConfig())).value();
  // stem: 1*3*3*4 + 4 = 40; block convs: 2 * (4*3*3*4 + 4) = 296.
  EXPECT_EQ(fx.num_params(), 40u + 296u);
}

TEST(FeatureExtractorTest, BackwardUpdateReducesLoss) {
  // Regression-style check: training the extractor + a fixed linear readout
  // against a target must reduce the loss, proving gradients flow through
  // pool, skip connection, and both convs.
  auto fx = std::move(FeatureExtractor::Create(SmallConfig())).value();
  Rng rng(3);
  Matrix x = Matrix::RandomUniform(8, 64, rng, 0.0f, 1.0f);
  Matrix target = Matrix::RandomGaussian(8, fx.feature_dim(), rng);
  FeatureExtractor::Workspace ws;
  auto loss_and_delta = [&](Matrix* delta) {
    const Matrix& feats = fx.Forward(x, &ws);
    double acc = 0.0;
    if (delta != nullptr) *delta = Matrix(feats.rows(), feats.cols());
    for (size_t i = 0; i < feats.size(); ++i) {
      const float d = feats.data()[i] - target.data()[i];
      acc += 0.5 * static_cast<double>(d) * d;
      if (delta != nullptr) delta->data()[i] = d;
    }
    return acc;
  };
  Matrix delta;
  const double first = loss_and_delta(&delta);
  for (int step = 0; step < 30; ++step) {
    fx.BackwardAndUpdate(x, &ws, delta, 1e-3f);
    loss_and_delta(&delta);
  }
  const double last = loss_and_delta(nullptr);
  EXPECT_LT(last, first * 0.9);
}

TEST(FeatureExtractorTest, DeepStackStillFinite) {
  FeatureExtractorConfig cfg = SmallConfig();
  cfg.input = {1, 16, 16};
  cfg.num_blocks = 3;
  auto fx = std::move(FeatureExtractor::Create(cfg)).value();
  Rng rng(4);
  Matrix x = Matrix::RandomUniform(2, 256, rng, 0.0f, 1.0f);
  FeatureExtractor::Workspace ws;
  const Matrix& feats = fx.Forward(x, &ws);
  for (size_t i = 0; i < feats.size(); ++i) {
    EXPECT_TRUE(std::isfinite(feats.data()[i]));
  }
}

}  // namespace
}  // namespace sampnn
