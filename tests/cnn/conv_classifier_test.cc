#include "src/cnn/conv_classifier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/batcher.h"
#include "src/data/synthetic.h"

namespace sampnn {
namespace {

Dataset SmallImageData(size_t n = 240, uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.name = "conv-test";
  spec.image_height = 12;
  spec.image_width = 12;
  spec.channels = 1;
  spec.num_classes = 3;
  spec.num_examples = n;
  spec.prototypes_per_class = 1;
  spec.noise_stddev = 0.05f;
  spec.shared_structure = 0.1f;
  spec.max_shift = 1;
  return GenerateSynthetic(spec, seed);
}

ConvClassifierConfig SmallConfig(ClassifierMode mode) {
  ConvClassifierConfig cfg;
  cfg.features.input = {1, 12, 12};
  cfg.features.stem_channels = 4;
  cfg.features.num_blocks = 1;
  cfg.features.seed = 42;
  cfg.hidden = 32;
  cfg.num_classes = 3;
  cfg.mode = mode;
  cfg.learning_rate = 0.05f;
  cfg.seed = 42;
  return cfg;
}

double TrainEpochs(ConvClassifier* model, const Dataset& data, size_t epochs) {
  Batcher batcher(data, 16, 7);
  Matrix x;
  std::vector<int32_t> y;
  for (size_t e = 0; e < epochs; ++e) {
    while (batcher.Next(&x, &y)) {
      std::move(model->Step(x, y)).ValueOrDie("step");
    }
  }
  return model->Evaluate(data);
}

TEST(ClassifierModeTest, ParsesKnownModes) {
  EXPECT_EQ(std::move(ClassifierModeFromString("exact")).value(),
            ClassifierMode::kExact);
  EXPECT_EQ(std::move(ClassifierModeFromString("mc")).value(),
            ClassifierMode::kMc);
  EXPECT_EQ(std::move(ClassifierModeFromString("dropout")).value(),
            ClassifierMode::kDropout);
  EXPECT_TRUE(ClassifierModeFromString("alsh").status().IsInvalidArgument());
}

TEST(ConvClassifierTest, CreateValidates) {
  ConvClassifierConfig cfg = SmallConfig(ClassifierMode::kExact);
  cfg.num_classes = 0;
  EXPECT_TRUE(ConvClassifier::Create(cfg).status().IsInvalidArgument());
  cfg = SmallConfig(ClassifierMode::kExact);
  cfg.learning_rate = 0.0f;
  EXPECT_TRUE(ConvClassifier::Create(cfg).status().IsInvalidArgument());
  cfg = SmallConfig(ClassifierMode::kDropout);
  cfg.dropout_keep = 0.0f;
  EXPECT_TRUE(ConvClassifier::Create(cfg).status().IsInvalidArgument());
}

TEST(ConvClassifierTest, StepValidatesBatch) {
  auto model = std::move(ConvClassifier::Create(
                             SmallConfig(ClassifierMode::kExact)))
                   .value();
  Matrix x(2, 144);
  std::vector<int32_t> y{0};
  EXPECT_TRUE(model.Step(x, y).status().IsInvalidArgument());
}

TEST(ConvClassifierTest, ExactModeLearns) {
  Dataset data = SmallImageData();
  auto model = std::move(ConvClassifier::Create(
                             SmallConfig(ClassifierMode::kExact)))
                   .value();
  const double acc = TrainEpochs(&model, data, 6);
  EXPECT_GT(acc, 0.8);  // 3 classes, chance = 0.33
}

TEST(ConvClassifierTest, McModeLearnsWithExactConv) {
  Dataset data = SmallImageData();
  ConvClassifierConfig cfg = SmallConfig(ClassifierMode::kMc);
  cfg.mc.grad_batch_samples = 8;
  cfg.mc.delta_min_samples = 16;
  auto model = std::move(ConvClassifier::Create(cfg)).value();
  const double acc = TrainEpochs(&model, data, 6);
  EXPECT_GT(acc, 0.7);
}

TEST(ConvClassifierTest, FrozenFeaturesStillTrainClassifier) {
  Dataset data = SmallImageData();
  ConvClassifierConfig cfg = SmallConfig(ClassifierMode::kExact);
  cfg.train_features = false;
  auto model = std::move(ConvClassifier::Create(cfg)).value();
  const double acc = TrainEpochs(&model, data, 6);
  EXPECT_GT(acc, 0.6);  // random conv features + trained FC head
}

TEST(ConvClassifierTest, DropoutModeRunsAndPredictsValidClasses) {
  Dataset data = SmallImageData(120);
  ConvClassifierConfig cfg = SmallConfig(ClassifierMode::kDropout);
  cfg.dropout_keep = 0.5f;
  auto model = std::move(ConvClassifier::Create(cfg)).value();
  TrainEpochs(&model, data, 2);
  const auto preds = model.Predict(data.features());
  for (int32_t p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(ConvClassifierTest, TimerSplitsConvAndClassifierPhases) {
  Dataset data = SmallImageData(60);
  auto model = std::move(ConvClassifier::Create(
                             SmallConfig(ClassifierMode::kExact)))
                   .value();
  TrainEpochs(&model, data, 1);
  EXPECT_GT(model.timer().Seconds("conv_forward"), 0.0);
  EXPECT_GT(model.timer().Seconds("conv_backward"), 0.0);
  EXPECT_GT(model.timer().Seconds(kPhaseForward), 0.0);
  EXPECT_GT(model.timer().Seconds(kPhaseBackward), 0.0);
}

TEST(ConvClassifierTest, NumParamsIncludesBothParts) {
  auto model = std::move(ConvClassifier::Create(
                             SmallConfig(ClassifierMode::kExact)))
                   .value();
  EXPECT_GT(model.num_params(), 0u);
}

}  // namespace
}  // namespace sampnn
