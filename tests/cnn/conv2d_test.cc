#include "src/cnn/conv2d.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

Conv2dConfig BasicConfig(size_t in_c, size_t out_c, size_t kernel = 3,
                         size_t stride = 1, size_t padding = 1) {
  Conv2dConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = kernel;
  cfg.stride = stride;
  cfg.padding = padding;
  cfg.activation = Activation::kLinear;
  return cfg;
}

TEST(Conv2dCreateTest, ValidatesConfig) {
  Rng rng(1);
  TensorShape in{3, 8, 8};
  Conv2dConfig bad = BasicConfig(2, 4);  // channel mismatch
  EXPECT_TRUE(Conv2dLayer::Create(bad, in, rng).status().IsInvalidArgument());
  Conv2dConfig zero = BasicConfig(3, 0);
  EXPECT_TRUE(Conv2dLayer::Create(zero, in, rng).status().IsInvalidArgument());
  Conv2dConfig huge = BasicConfig(3, 4, /*kernel=*/20, 1, /*padding=*/0);
  EXPECT_TRUE(Conv2dLayer::Create(huge, in, rng).status().IsInvalidArgument());
}

TEST(Conv2dCreateTest, OutputShapeSamePadding) {
  Rng rng(2);
  TensorShape in{3, 8, 8};
  auto conv = std::move(Conv2dLayer::Create(BasicConfig(3, 5), in, rng)).value();
  EXPECT_EQ(conv.output_shape().channels, 5u);
  EXPECT_EQ(conv.output_shape().height, 8u);  // k=3, pad=1, stride=1
  EXPECT_EQ(conv.output_shape().width, 8u);
}

TEST(Conv2dCreateTest, OutputShapeStride2NoPad) {
  Rng rng(3);
  TensorShape in{1, 9, 9};
  auto conv = std::move(Conv2dLayer::Create(
                            BasicConfig(1, 2, 3, /*stride=*/2, /*padding=*/0),
                            in, rng))
                  .value();
  EXPECT_EQ(conv.output_shape().height, 4u);  // (9-3)/2+1
  EXPECT_EQ(conv.output_shape().width, 4u);
}

// 1x1 identity kernel: convolution must reproduce the input exactly.
TEST(Conv2dForwardTest, IdentityKernelPassesThrough) {
  Rng rng(4);
  TensorShape in{1, 4, 4};
  auto conv = std::move(Conv2dLayer::Create(BasicConfig(1, 1, 1, 1, 0), in,
                                            rng))
                  .value();
  conv.filters().Fill(1.0f);  // single 1x1 weight = 1
  Matrix x = Matrix::RandomGaussian(2, 16, rng);
  Matrix z;
  conv.Forward(x, &z, nullptr);
  EXPECT_TRUE(z.AllClose(x, 1e-5f));
}

// Hand-computed 2x2 valid convolution on a 3x3 input.
TEST(Conv2dForwardTest, MatchesHandComputation) {
  Rng rng(5);
  TensorShape in{1, 3, 3};
  auto conv = std::move(Conv2dLayer::Create(BasicConfig(1, 1, 2, 1, 0), in,
                                            rng))
                  .value();
  // Filter laid out (c, ky, kx) row-major in the patch dimension.
  conv.filters()(0, 0) = 1.0f;   // (ky=0, kx=0)
  conv.filters()(1, 0) = 2.0f;   // (0, 1)
  conv.filters()(2, 0) = 3.0f;   // (1, 0)
  conv.filters()(3, 0) = 4.0f;   // (1, 1)
  conv.bias()[0] = 0.5f;
  auto x = std::move(Matrix::FromVector(1, 9, {1, 2, 3,
                                               4, 5, 6,
                                               7, 8, 9}))
               .value();
  Matrix z;
  conv.Forward(x, &z, nullptr);
  ASSERT_EQ(z.cols(), 4u);  // 2x2 output
  // out(0,0) = 1*1 + 2*2 + 3*4 + 4*5 + 0.5 = 37.5
  EXPECT_FLOAT_EQ(z(0, 0), 37.5f);
  // out(0,1) = 2 + 2*3 + 3*5 + 4*6 + 0.5 = 47.5
  EXPECT_FLOAT_EQ(z(0, 1), 47.5f);
  // out(1,0) = 4 + 2*5 + 3*7 + 4*8 + 0.5 = 67.5
  EXPECT_FLOAT_EQ(z(0, 2), 67.5f);
  EXPECT_FLOAT_EQ(z(0, 3), 77.5f);
}

TEST(Conv2dForwardTest, ActivationApplied) {
  Rng rng(6);
  TensorShape in{1, 4, 4};
  Conv2dConfig cfg = BasicConfig(1, 2);
  cfg.activation = Activation::kRelu;
  auto conv = std::move(Conv2dLayer::Create(cfg, in, rng)).value();
  Matrix x = Matrix::RandomGaussian(3, 16, rng);
  Matrix z, a;
  conv.Forward(x, &z, &a);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a.data()[i], 0.0f);
    EXPECT_FLOAT_EQ(a.data()[i], std::max(0.0f, z.data()[i]));
  }
}

// The decisive conv correctness test: analytic gradients vs central
// differences for filters, bias, and input.
TEST(Conv2dBackwardTest, MatchesNumericalGradients) {
  Rng rng(7);
  TensorShape in{2, 5, 5};
  auto conv = std::move(Conv2dLayer::Create(BasicConfig(2, 3, 3, 1, 1), in,
                                            rng))
                  .value();
  Matrix x = Matrix::RandomGaussian(2, in.size(), rng);
  // Loss = sum(z * G) for a fixed random G -> dL/dz = G.
  Matrix g = Matrix::RandomGaussian(2, conv.output_shape().size(), rng);
  auto loss = [&]() {
    Matrix z;
    conv.Forward(x, &z, nullptr);
    double acc = 0.0;
    for (size_t i = 0; i < z.size(); ++i) {
      acc += static_cast<double>(z.data()[i]) * g.data()[i];
    }
    return acc;
  };
  Matrix grad_filters;
  std::vector<float> grad_bias(3);
  Matrix grad_input;
  conv.Backward(x, g, &grad_filters, grad_bias, &grad_input);

  const float kEps = 1e-2f;
  // Filters (sample a subset for speed).
  for (size_t i = 0; i < grad_filters.rows(); i += 3) {
    for (size_t j = 0; j < grad_filters.cols(); ++j) {
      const float orig = conv.filters()(i, j);
      conv.filters()(i, j) = orig + kEps;
      const double lp = loss();
      conv.filters()(i, j) = orig - kEps;
      const double lm = loss();
      conv.filters()(i, j) = orig;
      EXPECT_NEAR(grad_filters(i, j), (lp - lm) / (2.0 * kEps), 2e-2)
          << "filter (" << i << "," << j << ")";
    }
  }
  // Bias.
  for (size_t o = 0; o < 3; ++o) {
    const float orig = conv.bias()[o];
    conv.bias()[o] = orig + kEps;
    const double lp = loss();
    conv.bias()[o] = orig - kEps;
    const double lm = loss();
    conv.bias()[o] = orig;
    EXPECT_NEAR(grad_bias[o], (lp - lm) / (2.0 * kEps), 2e-2) << "bias " << o;
  }
  // Input (sample).
  for (size_t i = 0; i < x.size(); i += 7) {
    const size_t r = i / x.cols(), c = i % x.cols();
    const float orig = x(r, c);
    x(r, c) = orig + kEps;
    const double lp = loss();
    x(r, c) = orig - kEps;
    const double lm = loss();
    x(r, c) = orig;
    EXPECT_NEAR(grad_input(r, c), (lp - lm) / (2.0 * kEps), 2e-2)
        << "input (" << r << "," << c << ")";
  }
}

TEST(MaxPool2dTest, CreateValidates) {
  EXPECT_TRUE(MaxPool2d::Create({1, 8, 8}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(MaxPool2d::Create({1, 7, 8}, 2).status().IsInvalidArgument());
  EXPECT_TRUE(MaxPool2d::Create({1, 8, 8}, 2).ok());
}

TEST(MaxPool2dTest, ForwardPicksMaxima) {
  auto pool = std::move(MaxPool2d::Create({1, 2, 4}, 2)).value();
  auto x = std::move(Matrix::FromVector(1, 8, {1, 5, 2, 0,
                                               3, 4, 9, 1}))
               .value();
  Matrix out;
  pool.Forward(x, &out);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 9.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  auto pool = std::move(MaxPool2d::Create({1, 2, 2}, 2)).value();
  auto x = std::move(Matrix::FromVector(1, 4, {1, 7, 3, 2})).value();
  Matrix out;
  pool.Forward(x, &out);
  auto delta = std::move(Matrix::FromVector(1, 1, {10.0f})).value();
  Matrix grad;
  pool.Backward(delta, &grad);
  EXPECT_FLOAT_EQ(grad(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad(0, 1), 10.0f);  // argmax position
  EXPECT_FLOAT_EQ(grad(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(grad(0, 3), 0.0f);
}

TEST(MaxPool2dTest, MultiChannelIndependence) {
  auto pool = std::move(MaxPool2d::Create({2, 2, 2}, 2)).value();
  auto x = std::move(Matrix::FromVector(1, 8, {1, 2, 3, 4,    // channel 0
                                               8, 7, 6, 5}))  // channel 1
               .value();
  Matrix out;
  pool.Forward(x, &out);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 8.0f);
}

}  // namespace
}  // namespace sampnn
