// Property sweep: the im2col+gemm convolution must match a naive direct
// convolution over a grid of shapes, kernels, strides, and paddings.

#include <tuple>

#include <gtest/gtest.h>

#include "src/cnn/conv2d.h"

namespace sampnn {
namespace {

// (in_channels, out_channels, h, w, kernel, stride, padding)
using ConvParam = std::tuple<size_t, size_t, size_t, size_t, size_t, size_t,
                             size_t>;

// Direct (quadruple-loop) convolution reference.
Matrix NaiveConv(const Matrix& input, const TensorShape& in_shape,
                 const Conv2dLayer& conv) {
  const auto& cfg = conv.config();
  const TensorShape& out = conv.output_shape();
  Matrix result(input.rows(), out.size());
  const size_t spatial = out.height * out.width;
  for (size_t b = 0; b < input.rows(); ++b) {
    auto image = input.Row(b);
    auto orow = result.Row(b);
    for (size_t o = 0; o < cfg.out_channels; ++o) {
      for (size_t oy = 0; oy < out.height; ++oy) {
        for (size_t ox = 0; ox < out.width; ++ox) {
          double acc = conv.bias()[o];
          for (size_t c = 0; c < cfg.in_channels; ++c) {
            for (size_t ky = 0; ky < cfg.kernel; ++ky) {
              for (size_t kx = 0; kx < cfg.kernel; ++kx) {
                const long iy = static_cast<long>(oy * cfg.stride + ky) -
                                static_cast<long>(cfg.padding);
                const long ix = static_cast<long>(ox * cfg.stride + kx) -
                                static_cast<long>(cfg.padding);
                if (iy < 0 || iy >= static_cast<long>(in_shape.height) ||
                    ix < 0 || ix >= static_cast<long>(in_shape.width)) {
                  continue;
                }
                const float pixel =
                    image[c * in_shape.height * in_shape.width +
                          static_cast<size_t>(iy) * in_shape.width +
                          static_cast<size_t>(ix)];
                const size_t patch_idx =
                    (c * cfg.kernel + ky) * cfg.kernel + kx;
                acc += pixel * conv.filters()(patch_idx, o);
              }
            }
          }
          orow[o * spatial + oy * out.width + ox] = static_cast<float>(acc);
        }
      }
    }
  }
  return result;
}

class ConvShapeSweep : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvShapeSweep, Im2ColMatchesDirectConvolution) {
  const auto [in_c, out_c, h, w, kernel, stride, padding] = GetParam();
  Rng rng(in_c * 1000 + out_c * 100 + h * 10 + w + kernel + stride + padding);
  Conv2dConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = kernel;
  cfg.stride = stride;
  cfg.padding = padding;
  cfg.activation = Activation::kLinear;
  TensorShape in_shape{in_c, h, w};
  auto conv_or = Conv2dLayer::Create(cfg, in_shape, rng);
  ASSERT_TRUE(conv_or.ok());
  Conv2dLayer conv = std::move(conv_or).value();
  // Random bias too.
  for (size_t o = 0; o < out_c; ++o) conv.bias()[o] = rng.NextGaussian();

  Matrix input = Matrix::RandomGaussian(3, in_shape.size(), rng);
  Matrix z;
  conv.Forward(input, &z, nullptr);
  Matrix expected = NaiveConv(input, in_shape, conv);
  EXPECT_TRUE(z.AllClose(expected, 1e-3f))
      << "c=" << in_c << "->" << out_c << " " << h << "x" << w << " k="
      << kernel << " s=" << stride << " p=" << padding;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvShapeSweep,
    ::testing::Values(ConvParam{1, 1, 4, 4, 1, 1, 0},
                      ConvParam{1, 2, 5, 5, 3, 1, 1},
                      ConvParam{2, 3, 6, 6, 3, 1, 0},
                      ConvParam{3, 2, 8, 8, 3, 2, 1},
                      ConvParam{1, 4, 7, 5, 5, 1, 2},
                      ConvParam{2, 2, 9, 9, 3, 3, 0},
                      ConvParam{4, 1, 4, 8, 2, 2, 0},
                      ConvParam{1, 1, 3, 3, 3, 1, 2}));

}  // namespace
}  // namespace sampnn
