// Regression guards for the observability layer (ISSUE satellite): with
// telemetry disabled an installed sink must see zero writes, and enabling
// telemetry must not perturb training — losses and accuracies stay
// bitwise-identical for the same seeds, because instrumentation only reads
// clocks and bumps atomics, never the RNG or the math.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/telemetry/epoch_recorder.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "tests/core/test_util.h"

namespace sampnn {
namespace {

class TelemetryGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTelemetryEnabled(false);
    SetGlobalEpochRecorder(nullptr);
    TraceRecorder::Get().Clear();
  }
  void TearDown() override {
    SetTelemetryEnabled(false);
    SetGlobalEpochRecorder(nullptr);
    TraceRecorder::Get().Clear();
  }

  static DatasetSplits SmallSplits() {
    DatasetSplits splits;
    splits.train = testing_util::EasyDataset(120, 4, 21);
    splits.test = testing_util::EasyDataset(60, 4, 22);
    return splits;
  }

  static ExperimentConfig SmallConfig(TrainerKind kind) {
    ExperimentConfig config;
    config.trainer = PaperTrainerOptions(kind, /*batch_size=*/20, /*seed=*/42);
    config.epochs = 2;
    config.batch_size = 20;
    config.eval_each_epoch = true;
    return config;
  }

  static MlpConfig SmallNet(const DatasetSplits& splits) {
    return testing_util::EasyNet(splits.train, /*depth=*/2, /*width=*/32);
  }
};

TEST_F(TelemetryGuardTest, DisabledRunWritesNothing) {
  const DatasetSplits splits = SmallSplits();
  EpochRecorder recorder(std::make_unique<NullSink>());
  SetGlobalEpochRecorder(&recorder);
  for (TrainerKind kind : {TrainerKind::kStandard, TrainerKind::kAlsh,
                           TrainerKind::kMc}) {
    ExperimentConfig config = SmallConfig(kind);
    config.telemetry = &recorder;
    auto result = RunExperiment(SmallNet(splits), config, splits);
    ASSERT_TRUE(result.ok()) << TrainerKindToString(kind);
  }
  EXPECT_EQ(recorder.records_written(), 0u);
  EXPECT_EQ(TraceRecorder::Get().size(), 0u);
}

TEST_F(TelemetryGuardTest, EnablingTelemetryDoesNotChangeTraining) {
  const DatasetSplits splits = SmallSplits();
  for (TrainerKind kind : {TrainerKind::kStandard, TrainerKind::kDropout,
                           TrainerKind::kAlsh, TrainerKind::kMc}) {
    SetTelemetryEnabled(false);
    auto baseline = RunExperiment(SmallNet(splits), SmallConfig(kind), splits);
    ASSERT_TRUE(baseline.ok()) << TrainerKindToString(kind);

    SetTelemetryEnabled(true);
    EpochRecorder recorder(std::make_unique<NullSink>());
    ExperimentConfig config = SmallConfig(kind);
    config.telemetry = &recorder;
    auto instrumented = RunExperiment(SmallNet(splits), config, splits);
    SetTelemetryEnabled(false);
    ASSERT_TRUE(instrumented.ok()) << TrainerKindToString(kind);

    // One record per epoch actually flowed while enabled.
    EXPECT_EQ(recorder.records_written(), config.epochs)
        << TrainerKindToString(kind);

    ASSERT_EQ(baseline->epochs.size(), instrumented->epochs.size());
    for (size_t e = 0; e < baseline->epochs.size(); ++e) {
      // Bitwise equality: telemetry must not consume RNG draws or reorder
      // float operations.
      EXPECT_EQ(baseline->epochs[e].train_loss,
                instrumented->epochs[e].train_loss)
          << TrainerKindToString(kind) << " epoch " << e;
      EXPECT_EQ(baseline->epochs[e].test_accuracy,
                instrumented->epochs[e].test_accuracy)
          << TrainerKindToString(kind) << " epoch " << e;
    }
    EXPECT_EQ(baseline->final_test_accuracy, instrumented->final_test_accuracy)
        << TrainerKindToString(kind);
  }
}

TEST_F(TelemetryGuardTest, EnabledRunEmitsSpansAndMetrics) {
  const DatasetSplits splits = SmallSplits();
  SetTelemetryEnabled(true);
  MetricsRegistry::Get().ResetAll();
  TraceRecorder::Get().Clear();
  EpochRecorder recorder(std::make_unique<NullSink>());
  ExperimentConfig config = SmallConfig(TrainerKind::kAlsh);
  config.telemetry = &recorder;
  config.run_label = "guard_test";
  auto result = RunExperiment(SmallNet(splits), config, splits);
  ASSERT_TRUE(result.ok());
  // Spans from the forward/backward/sampling phases landed in the ring.
  bool saw_forward = false, saw_backward = false, saw_sampling = false;
  for (const TraceEvent& e : TraceRecorder::Get().Snapshot()) {
    if (std::string_view(e.name) == kPhaseForward) saw_forward = true;
    if (std::string_view(e.name) == kPhaseBackward) saw_backward = true;
    if (std::string_view(e.name) == kPhaseSampling) saw_sampling = true;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_backward);
  EXPECT_TRUE(saw_sampling);
  // The LSH probe histograms observed traffic.
  EXPECT_GT(
      MetricsRegistry::Get().GetHistogram("lsh.query.active").Count(), 0u);
  // Sparse-kernel FLOPs were charged (ALSH trains on active columns).
  EXPECT_GT(
      MetricsRegistry::Get().GetCounter("tensor.sparse.flops").Value(), 0u);
}

}  // namespace
}  // namespace sampnn
