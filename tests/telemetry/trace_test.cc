#include "src/telemetry/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/metrics/split_timer.h"
#include "src/telemetry/telemetry.h"

namespace sampnn {
namespace {

// Every test restores the disabled default so ordering cannot leak state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTelemetryEnabled(false);
    TraceRecorder::Get().SetCapacity(1 << 10);
  }
  void TearDown() override {
    SetTelemetryEnabled(false);
    TraceRecorder::Get().SetCapacity(1 << 16);
  }
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  { TraceSpan span("should_not_appear"); }
  EXPECT_EQ(TraceRecorder::Get().size(), 0u);
}

TEST_F(TraceTest, EnabledSpanRecordsNameAndDuration) {
  SetTelemetryEnabled(true);
  { TraceSpan span("unit_test_span"); }
  const auto events = TraceRecorder::Get().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_test_span");
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_GE(events[0].ts_us, 0);
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(TraceTest, PhaseScopeChargesTimerAlways) {
  // Telemetry off: the SplitTimer half still runs (paper time splits must
  // not depend on observability), the trace half stays silent.
  SplitTimer timer;
  { PhaseScope scope(&timer, kPhaseForward); }
  EXPECT_GT(timer.Seconds(kPhaseForward), 0.0);
  EXPECT_EQ(TraceRecorder::Get().size(), 0u);

  SetTelemetryEnabled(true);
  { PhaseScope scope(&timer, kPhaseBackward); }
  EXPECT_GT(timer.Seconds(kPhaseBackward), 0.0);
  ASSERT_EQ(TraceRecorder::Get().size(), 1u);
  EXPECT_STREQ(TraceRecorder::Get().Snapshot()[0].name, kPhaseBackward);
}

TEST_F(TraceTest, RingOverwritesOldestWhenFull) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.SetCapacity(4);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) rec.Append(names[i], i, 1);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_appended(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: e0 and e1 were overwritten.
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[3].name, "e5");
}

TEST_F(TraceTest, ClearEmptiesButKeepsLifetimeCounts) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.Append("x", 0, 1);
  EXPECT_EQ(rec.size(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.Snapshot().size(), 0u);
}

TEST_F(TraceTest, ToJsonIsChromeTraceShaped) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.Append("forward", 10, 5);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  // Valid JSON object bracketing.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.Append("span", 0, 2);
  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(rec.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), rec.ToJson());
  std::remove(path.c_str());
}

TEST_F(TraceTest, ThreadIdsAreStablePerThreadAndDistinct) {
  const uint32_t main_id = TraceRecorder::CurrentThreadId();
  EXPECT_EQ(TraceRecorder::CurrentThreadId(), main_id);
  uint32_t other_id = 0;
  std::thread t([&other_id] { other_id = TraceRecorder::CurrentThreadId(); });
  t.join();
  EXPECT_NE(other_id, 0u);
  EXPECT_NE(other_id, main_id);
}

TEST_F(TraceTest, ExactlyFullRingRetainsEverythingInOrder) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.SetCapacity(4);
  const char* names[] = {"f0", "f1", "f2", "f3"};
  for (int i = 0; i < 4; ++i) rec.Append(names[i], i, 1);
  // Exactly full: next_ has wrapped to 0 but nothing was dropped yet — the
  // boundary the snapshot's unwrap logic must get right.
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_STREQ(events[i].name, names[i]) << i;
    EXPECT_EQ(events[i].ts_us, i);
  }
}

TEST_F(TraceTest, WrappedRingSerializesToWellFormedJson) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.SetCapacity(3);
  for (int i = 0; i < 8; ++i) rec.Append("wrap_span", i * 10, 3);
  const std::string json = rec.ToJson();
  // Well-formed after wrapping: balanced brackets, exactly size() events,
  // no trailing comma before the array close.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find(",]"), std::string::npos);
  size_t occurrences = 0;
  for (size_t pos = 0; (pos = json.find("wrap_span", pos)) != std::string::npos;
       ++pos) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 3u);
  // Oldest retained span first: ts 50, 60, 70.
  EXPECT_LT(json.find("\"ts\":50"), json.find("\"ts\":70"));
  EXPECT_EQ(json.find("\"ts\":40"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmittersWrapWithoutTearing) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.SetCapacity(64);  // far below the append volume: constant wrapping
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("wrap_mt");
        (void)span;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.size(), 64u);
  EXPECT_EQ(rec.total_appended(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread - 64);
  // Every retained event is intact (no torn name pointers or negative
  // durations), and the serialization still parses shape-wise.
  for (const TraceEvent& e : rec.Snapshot()) {
    EXPECT_STREQ(e.name, "wrap_mt");
    EXPECT_GE(e.dur_us, 0);
  }
  const std::string json = rec.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(TraceTest, ConcurrentAppendsRetainEverythingUnderCapacity) {
  SetTelemetryEnabled(true);
  TraceRecorder& rec = TraceRecorder::Get();
  rec.SetCapacity(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("mt_span");
        (void)span;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec.dropped(), 0u);
}

}  // namespace
}  // namespace sampnn
