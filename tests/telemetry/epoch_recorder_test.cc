#include "src/telemetry/epoch_recorder.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "src/telemetry/telemetry.h"

namespace sampnn {
namespace {

class EpochRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { SetTelemetryEnabled(false); }
  void TearDown() override {
    SetTelemetryEnabled(false);
    SetGlobalEpochRecorder(nullptr);
  }
};

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(EpochTelemetryJsonTest, EmitsFlatSchemaWithAllFields) {
  EpochTelemetry rec;
  rec.run = "bench_x";
  rec.method = "alsh";
  rec.architecture = "100-32-32-4";
  rec.epoch = 3;
  rec.train_loss = 0.5;
  rec.test_accuracy = 0.75;
  rec.active_node_fraction = 0.05;
  rec.hash_rebuilds = 7;
  rec.gemm_flops = 12345;
  const std::string json = EpochTelemetryToJson(rec);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"run\":\"bench_x\"", "\"method\":\"alsh\"",
        "\"architecture\":\"100-32-32-4\"", "\"epoch\":3", "\"train_loss\":",
        "\"test_accuracy\":", "\"validation_accuracy\":", "\"epoch_seconds\":",
        "\"forward_seconds\":", "\"backward_seconds\":", "\"sampling_seconds\":",
        "\"rebuild_seconds\":", "\"parallel_seconds\":",
        "\"active_node_fraction\":", "\"hash_rebuilds\":7",
        "\"alsh_avg_bucket_occupancy\":", "\"alsh_max_bucket_occupancy\":",
        "\"alsh_nonempty_buckets\":", "\"mc_batch_samples\":",
        "\"mc_delta_samples\":", "\"gemm_flops\":12345", "\"sparse_flops\":",
        "\"rss_bytes\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: " << json;
  }
  // JSONL: one record per line, so the payload itself must be single-line.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(SinkTest, MakeSinkMapsSpecs) {
  auto null_sink = MakeSink("null");
  ASSERT_TRUE(null_sink.ok());
  EXPECT_NE(dynamic_cast<NullSink*>(null_sink->get()), nullptr);
  auto stderr_sink = MakeSink("stderr");
  ASSERT_TRUE(stderr_sink.ok());
  EXPECT_NE(dynamic_cast<StderrSink*>(stderr_sink->get()), nullptr);
  const std::string path = ::testing::TempDir() + "/sink_test.jsonl";
  auto file_sink = MakeSink(path);
  ASSERT_TRUE(file_sink.ok());
  EXPECT_NE(dynamic_cast<FileSink*>(file_sink->get()), nullptr);
  std::remove(path.c_str());
}

TEST(SinkTest, CountsLinesAndFileSinkPersistsThem) {
  const std::string path = ::testing::TempDir() + "/file_sink_test.jsonl";
  auto sink = std::move(MakeSink(path)).value();
  EXPECT_EQ(sink->lines_written(), 0u);
  sink->WriteLine("{\"a\":1}");
  sink->WriteLine("{\"b\":2}");
  EXPECT_EQ(sink->lines_written(), 2u);
  ASSERT_TRUE(sink->Flush().ok());
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), "{\"a\":1}\n{\"b\":2}\n");
  std::remove(path.c_str());
}

TEST_F(EpochRecorderTest, RecordIsNoOpWhileDisabled) {
  EpochRecorder recorder(std::make_unique<NullSink>());
  EpochTelemetry rec;
  rec.method = "standard";
  recorder.Record(rec);
  EXPECT_EQ(recorder.records_written(), 0u);
}

TEST_F(EpochRecorderTest, RecordWritesOneLinePerEpochWhenEnabled) {
  SetTelemetryEnabled(true);
  const std::string path = ::testing::TempDir() + "/recorder_test.jsonl";
  EpochRecorder recorder(std::move(MakeSink(path)).value());
  recorder.SetRunLabel("my_bench");
  EpochTelemetry rec;
  rec.method = "standard";
  rec.epoch = 1;
  recorder.Record(rec);
  rec.epoch = 2;
  rec.run = "explicit_run";  // explicit label wins over the recorder default
  recorder.Record(rec);
  EXPECT_EQ(recorder.records_written(), 2u);
  ASSERT_TRUE(recorder.Flush().ok());
  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"run\":\"my_bench\""), std::string::npos);
  EXPECT_NE(line1.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(line2.find("\"run\":\"explicit_run\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(EpochRecorderTest, GlobalRecorderInstallAndUninstall) {
  EXPECT_EQ(GlobalEpochRecorder(), nullptr);
  EpochRecorder recorder(std::make_unique<NullSink>());
  SetGlobalEpochRecorder(&recorder);
  EXPECT_EQ(GlobalEpochRecorder(), &recorder);
  SetGlobalEpochRecorder(nullptr);
  EXPECT_EQ(GlobalEpochRecorder(), nullptr);
}

}  // namespace
}  // namespace sampnn
