#include "src/telemetry/metrics_registry.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(CounterTest, AddAccumulatesAndResets) {
  Counter& c = MetricsRegistry::Get().GetCounter("test.counter.basic");
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  EXPECT_EQ(c.name(), "test.counter.basic");
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, SameNameReturnsSameReference) {
  Counter& a = MetricsRegistry::Get().GetCounter("test.counter.same");
  Counter& b = MetricsRegistry::Get().GetCounter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(CounterTest, ConcurrentAddsDoNotLoseIncrements) {
  Counter& c = MetricsRegistry::Get().GetCounter("test.counter.mt");
  c.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge& g = MetricsRegistry::Get().GetGauge("test.gauge.basic");
  g.Reset();
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge& g = MetricsRegistry::Get().GetGauge("test.gauge.mt");
  g.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketIndexIsLog2) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Huge values land in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketLowerBoundInvertsIndex) {
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << i;
    EXPECT_EQ(Histogram::BucketIndex(2 * lo - 1), i) << i;
  }
}

TEST(HistogramTest, ObserveTracksCountSumMinMax) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.basic");
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);  // empty histogram reports 0, not uint64 max
  h.Observe(3);
  h.Observe(9);
  h.Observe(0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 12u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 9u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  EXPECT_EQ(h.BucketCount(0), 1u);                          // the 0
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(3)), 1u);  // the 3
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(9)), 1u);  // the 9
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, ConcurrentObservesKeepTotals) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.mt");
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), static_cast<uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("test.sorted.b");
  reg.GetCounter("test.sorted.a");
  const auto counters = reg.Counters();
  ASSERT_GE(counters.size(), 2u);
  for (size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1]->name(), counters[i]->name());
  }
}

TEST(MetricsRegistryTest, ToJsonContainsRegisteredMetrics) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("test.json.counter").Add(7);
  reg.GetGauge("test.json.gauge").Set(1.0);
  reg.GetHistogram("test.json.hist").Observe(2);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  Counter& c = reg.GetCounter("test.resetall.counter");
  Gauge& g = reg.GetGauge("test.resetall.gauge");
  Histogram& h = reg.GetHistogram("test.resetall.hist");
  c.Add(3);
  g.Set(3.0);
  h.Observe(3);
  reg.ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

}  // namespace
}  // namespace sampnn
