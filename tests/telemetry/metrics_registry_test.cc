#include "src/telemetry/metrics_registry.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(CounterTest, AddAccumulatesAndResets) {
  Counter& c = MetricsRegistry::Get().GetCounter("test.counter.basic");
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  EXPECT_EQ(c.name(), "test.counter.basic");
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, SameNameReturnsSameReference) {
  Counter& a = MetricsRegistry::Get().GetCounter("test.counter.same");
  Counter& b = MetricsRegistry::Get().GetCounter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(CounterTest, ConcurrentAddsDoNotLoseIncrements) {
  Counter& c = MetricsRegistry::Get().GetCounter("test.counter.mt");
  c.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge& g = MetricsRegistry::Get().GetGauge("test.gauge.basic");
  g.Reset();
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge& g = MetricsRegistry::Get().GetGauge("test.gauge.mt");
  g.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketIndexIsLog2) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Huge values land in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketLowerBoundInvertsIndex) {
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << i;
    EXPECT_EQ(Histogram::BucketIndex(2 * lo - 1), i) << i;
  }
}

TEST(HistogramTest, ObserveTracksCountSumMinMax) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.basic");
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);  // empty histogram reports 0, not uint64 max
  h.Observe(3);
  h.Observe(9);
  h.Observe(0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 12u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 9u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  EXPECT_EQ(h.BucketCount(0), 1u);                          // the 0
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(3)), 1u);  // the 3
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(9)), 1u);  // the 9
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, ConcurrentObservesKeepTotals) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.mt");
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), static_cast<uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("test.sorted.b");
  reg.GetCounter("test.sorted.a");
  const auto counters = reg.Counters();
  ASSERT_GE(counters.size(), 2u);
  for (size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1]->name(), counters[i]->name());
  }
}

TEST(MetricsRegistryTest, ToJsonContainsRegisteredMetrics) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("test.json.counter").Add(7);
  reg.GetGauge("test.json.gauge").Set(1.0);
  reg.GetHistogram("test.json.hist").Observe(2);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
}

TEST(HistogramTest, OverflowValuesAreCountedNotClamped) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.overflow");
  h.Reset();
  const uint64_t huge = uint64_t{1} << 40;  // bit_width 41 >= kNumBuckets
  ASSERT_TRUE(Histogram::Overflows(huge));
  ASSERT_FALSE(Histogram::Overflows((uint64_t{1} << 31) + 5));
  h.Observe(3);
  h.Observe(huge);
  h.Observe(~uint64_t{0});
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.OverflowCount(), 2u);
  // Regression: the top finite bucket must NOT absorb the huge values.
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 0u);
  // Conservation: finite buckets + overflow == count.
  uint64_t finite = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) finite += h.BucketCount(i);
  EXPECT_EQ(finite + h.OverflowCount(), h.Count());
  h.Reset();
  EXPECT_EQ(h.OverflowCount(), 0u);
}

TEST(HistogramTest, SnapshotCopiesEveryField) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.snapshot");
  h.Reset();
  h.Observe(0);
  h.Observe(5);
  h.Observe(uint64_t{1} << 60);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.overflow, 1u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[Histogram::BucketIndex(5)], 1u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, uint64_t{1} << 60);
}

TEST(HistogramSnapshotTest, DeltaSinceIsolatesTheWindow) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.delta");
  h.Reset();
  h.Observe(4);
  h.Observe(4);
  const HistogramSnapshot before = h.Snapshot();
  h.Observe(4);
  h.Observe(100);
  const HistogramSnapshot delta = h.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 104u);
  EXPECT_EQ(delta.buckets[Histogram::BucketIndex(4)], 1u);
  EXPECT_EQ(delta.buckets[Histogram::BucketIndex(100)], 1u);
}

TEST(HistogramSnapshotTest, DeltaSinceSaturatesAcrossReset) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.delta_reset");
  h.Reset();
  h.Observe(8);
  h.Observe(8);
  const HistogramSnapshot before = h.Snapshot();
  h.Reset();
  h.Observe(8);
  const HistogramSnapshot delta = h.Snapshot().DeltaSince(before);
  // A reset in between must yield an empty-ish delta, never a wrapped one.
  EXPECT_EQ(delta.count, 0u);
  EXPECT_EQ(delta.buckets[Histogram::BucketIndex(8)], 0u);
}

TEST(HistogramSnapshotTest, MergeAddsCounts) {
  HistogramSnapshot a, b;
  a.buckets[3] = 2;
  a.count = 2;
  a.sum = 10;
  a.max = 7;
  b.buckets[3] = 1;
  b.buckets[5] = 1;
  b.overflow = 1;
  b.count = 3;
  b.sum = 40;
  b.max = 20;
  a.Merge(b);
  EXPECT_EQ(a.buckets[3], 3u);
  EXPECT_EQ(a.buckets[5], 1u);
  EXPECT_EQ(a.overflow, 1u);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.sum, 50u);
  EXPECT_EQ(a.max, 20u);
}

TEST(HistogramSnapshotTest, QuantileWalksBucketsAndClamps) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.quantile");
  h.Reset();
  // 90 fast observations at 2ms, 10 slow at 100ms: p50 must sit in the
  // 2ms bucket, p99 in the 100ms bucket, and every estimate within
  // [min, max].
  for (int i = 0; i < 90; ++i) h.Observe(2);
  for (int i = 0; i < 10; ++i) h.Observe(100);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.0), 2.0);  // clamped to min
  EXPECT_LE(s.Quantile(0.50), 4.0);
  EXPECT_GE(s.Quantile(0.50), 2.0);
  EXPECT_GE(s.Quantile(0.99), 64.0);  // inside the [64,128) bucket
  EXPECT_LE(s.Quantile(0.99), 100.0);  // clamped to max
  EXPECT_EQ(s.Quantile(1.0), 100.0);
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);  // empty -> 0
}

TEST(HistogramTest, ExemplarTracksLargestObservation) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.exemplar");
  h.Reset();
  EXPECT_FALSE(h.HasExemplar());
  h.ObserveWithExemplar(10, 101);
  h.ObserveWithExemplar(50, 202);
  h.ObserveWithExemplar(20, 303);  // smaller: must not displace
  EXPECT_TRUE(h.HasExemplar());
  EXPECT_EQ(h.ExemplarValue(), 50u);
  EXPECT_EQ(h.ExemplarId(), 202u);
  h.Reset();
  EXPECT_FALSE(h.HasExemplar());
}

TEST(HistogramTest, ConcurrentExemplarsConvergeToTheMaximum) {
  Histogram& h = MetricsRegistry::Get().GetHistogram("test.hist.exemplar_mt");
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t v = static_cast<uint64_t>(t * kPerThread + i);
        h.ObserveWithExemplar(v, /*id=*/v + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t max_v = kThreads * kPerThread - 1;
  EXPECT_EQ(h.ExemplarValue(), max_v);
  EXPECT_EQ(h.ExemplarId(), max_v + 1);
}

TEST(MetricsRegistryTest, ToJsonIncludesOverflowField) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  Histogram& h = reg.GetHistogram("test.json.overflow_hist");
  h.Reset();
  h.Observe(uint64_t{1} << 50);
  EXPECT_NE(reg.ToJson().find("\"overflow\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  Counter& c = reg.GetCounter("test.resetall.counter");
  Gauge& g = reg.GetGauge("test.resetall.gauge");
  Histogram& h = reg.GetHistogram("test.resetall.hist");
  c.Add(3);
  g.Set(3.0);
  h.Observe(3);
  reg.ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

}  // namespace
}  // namespace sampnn
