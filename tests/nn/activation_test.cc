#include "src/nn/activation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(ActivationParseTest, RoundTripsAllNames) {
  for (Activation act : {Activation::kLinear, Activation::kRelu,
                         Activation::kSigmoid, Activation::kTanh}) {
    auto parsed = ActivationFromString(ActivationToString(act));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), act);
  }
  EXPECT_TRUE(ActivationFromString("swish").status().IsInvalidArgument());
}

TEST(ActivationValueTest, KnownValues) {
  EXPECT_EQ(ActivationValue(Activation::kLinear, -3.0f), -3.0f);
  EXPECT_EQ(ActivationValue(Activation::kRelu, -3.0f), 0.0f);
  EXPECT_EQ(ActivationValue(Activation::kRelu, 3.0f), 3.0f);
  EXPECT_FLOAT_EQ(ActivationValue(Activation::kSigmoid, 0.0f), 0.5f);
  EXPECT_FLOAT_EQ(ActivationValue(Activation::kTanh, 0.0f), 0.0f);
  EXPECT_NEAR(ActivationValue(Activation::kSigmoid, 100.0f), 1.0f, 1e-6f);
}

class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradTest, MatchesNumericalDerivative) {
  const Activation act = GetParam();
  const float kEps = 1e-3f;
  for (float z : {-2.0f, -0.5f, 0.3f, 1.7f, 4.0f}) {
    const float numeric = (ActivationValue(act, z + kEps) -
                           ActivationValue(act, z - kEps)) /
                          (2.0f * kEps);
    EXPECT_NEAR(ActivationGradValue(act, z), numeric, 5e-3f)
        << ActivationToString(act) << " at z=" << z;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradTest,
                         ::testing::Values(Activation::kLinear,
                                           Activation::kRelu,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(ActivationSpanTest, AppliesElementwise) {
  std::vector<float> z{-1.0f, 0.0f, 2.0f};
  std::vector<float> a(3);
  ApplyActivation(Activation::kRelu, z, a);
  EXPECT_EQ(a, (std::vector<float>{0.0f, 0.0f, 2.0f}));
}

TEST(ActivationSpanTest, InPlaceAliasingWorks) {
  std::vector<float> z{-1.0f, 3.0f};
  ApplyActivation(Activation::kRelu, z, z);
  EXPECT_EQ(z, (std::vector<float>{0.0f, 3.0f}));
}

TEST(ActivationMatrixTest, AppliesOverWholeMatrix) {
  auto m = std::move(Matrix::FromVector(2, 2, {-1, 2, -3, 4})).value();
  ApplyActivation(Activation::kRelu, &m);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(0, 1), 2.0f);
  EXPECT_EQ(m(1, 0), 0.0f);
  EXPECT_EQ(m(1, 1), 4.0f);
}

TEST(ActivationGradFromZTest, FillsDerivatives) {
  std::vector<float> z{-1.0f, 1.0f};
  std::vector<float> d(2);
  ActivationGradFromZ(Activation::kRelu, z, d);
  EXPECT_EQ(d, (std::vector<float>{0.0f, 1.0f}));
}

TEST(MultiplyActivationGradTest, HadamardWithFPrime) {
  auto z = std::move(Matrix::FromVector(1, 3, {-1, 0.5f, 2})).value();
  auto delta = std::move(Matrix::FromVector(1, 3, {10, 10, 10})).value();
  MultiplyActivationGrad(Activation::kRelu, z, &delta);
  EXPECT_EQ(delta(0, 0), 0.0f);
  EXPECT_EQ(delta(0, 1), 10.0f);
  EXPECT_EQ(delta(0, 2), 10.0f);
}

TEST(MultiplyActivationGradTest, LinearIsNoop) {
  auto z = std::move(Matrix::FromVector(1, 2, {-5, 5})).value();
  auto delta = std::move(Matrix::FromVector(1, 2, {3, 4})).value();
  MultiplyActivationGrad(Activation::kLinear, z, &delta);
  EXPECT_EQ(delta(0, 0), 3.0f);
  EXPECT_EQ(delta(0, 1), 4.0f);
}

}  // namespace
}  // namespace sampnn
