#include "src/nn/initializer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(InitializerParseTest, RoundTrips) {
  for (Initializer init :
       {Initializer::kHe, Initializer::kXavier, Initializer::kUniform}) {
    auto parsed = InitializerFromString(InitializerToString(init));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), init);
  }
  EXPECT_TRUE(InitializerFromString("zeros").status().IsInvalidArgument());
}

TEST(InitializerTest, ShapesAreFanInByFanOut) {
  Rng rng(1);
  Matrix w = InitializeWeights(Initializer::kHe, 30, 20, rng);
  EXPECT_EQ(w.rows(), 30u);
  EXPECT_EQ(w.cols(), 20u);
}

TEST(InitializerTest, HeStddevMatchesFanIn) {
  Rng rng(2);
  const size_t fan_in = 400;
  Matrix w = InitializeWeights(Initializer::kHe, fan_in, 400, rng);
  double sq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double stddev = std::sqrt(sq / w.size());
  EXPECT_NEAR(stddev, std::sqrt(2.0 / fan_in), 0.005);
}

TEST(InitializerTest, XavierStaysInBound) {
  Rng rng(3);
  Matrix w = InitializeWeights(Initializer::kXavier, 100, 50, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.data()[i], -bound);
    EXPECT_LT(w.data()[i], bound);
  }
}

TEST(InitializerTest, UniformStaysInBound) {
  Rng rng(4);
  Matrix w = InitializeWeights(Initializer::kUniform, 64, 32, rng);
  const float bound = 1.0f / 8.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.data()[i], -bound);
    EXPECT_LT(w.data()[i], bound);
  }
}

TEST(InitializerTest, DeterministicInRngState) {
  Rng a(5), b(5);
  Matrix wa = InitializeWeights(Initializer::kHe, 10, 10, a);
  Matrix wb = InitializeWeights(Initializer::kHe, 10, 10, b);
  EXPECT_TRUE(wa.AllClose(wb, 0.0f));
}

}  // namespace
}  // namespace sampnn
