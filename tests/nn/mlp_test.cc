#include "src/nn/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/loss.h"

namespace sampnn {
namespace {

MlpConfig SmallConfig() {
  MlpConfig cfg = MlpConfig::Uniform(4, 3, 2, 6);
  cfg.seed = 42;
  return cfg;
}

TEST(MlpCreateTest, ValidatesDimensions) {
  MlpConfig cfg = SmallConfig();
  cfg.input_dim = 0;
  EXPECT_TRUE(Mlp::Create(cfg).status().IsInvalidArgument());
  cfg = SmallConfig();
  cfg.output_dim = 0;
  EXPECT_TRUE(Mlp::Create(cfg).status().IsInvalidArgument());
  cfg = SmallConfig();
  cfg.hidden_dims = {5, 0, 5};
  EXPECT_TRUE(Mlp::Create(cfg).status().IsInvalidArgument());
}

TEST(MlpCreateTest, LayerShapesChain) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  ASSERT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.num_hidden_layers(), 2u);
  EXPECT_EQ(net.layer(0).in_dim(), 4u);
  EXPECT_EQ(net.layer(0).out_dim(), 6u);
  EXPECT_EQ(net.layer(1).in_dim(), 6u);
  EXPECT_EQ(net.layer(2).out_dim(), 3u);
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 3u);
}

TEST(MlpCreateTest, NoHiddenLayersIsLogisticRegression) {
  MlpConfig cfg = MlpConfig::Uniform(5, 2, 0, 0);
  auto net = Mlp::Create(cfg);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_layers(), 1u);
  EXPECT_EQ(net->num_hidden_layers(), 0u);
}

TEST(MlpCreateTest, OutputLayerIsLinear) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  EXPECT_EQ(net.layer(net.num_layers() - 1).activation(), Activation::kLinear);
}

TEST(MlpCreateTest, SameSeedSameWeights) {
  auto a = std::move(Mlp::Create(SmallConfig())).value();
  auto b = std::move(Mlp::Create(SmallConfig())).value();
  for (size_t k = 0; k < a.num_layers(); ++k) {
    EXPECT_TRUE(a.layer(k).weights().AllClose(b.layer(k).weights(), 0.0f));
  }
}

TEST(MlpForwardTest, ShapesAndWorkspace) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  Rng rng(1);
  Matrix x = Matrix::RandomGaussian(5, 4, rng);
  MlpWorkspace ws;
  const Matrix& logits = net.Forward(x, &ws);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 3u);
  ASSERT_EQ(ws.z.size(), 3u);
  ASSERT_EQ(ws.a.size(), 3u);
  EXPECT_EQ(ws.a[0].cols(), 6u);
}

TEST(MlpForwardTest, SampleMatchesBatchRow) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  Rng rng(2);
  Matrix x = Matrix::RandomGaussian(3, 4, rng);
  MlpWorkspace ws;
  const Matrix& logits = net.Forward(x, &ws);
  for (size_t r = 0; r < 3; ++r) {
    const auto single = net.ForwardSample(x.Row(r));
    ASSERT_EQ(single.size(), 3u);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(single[j], logits(r, j), 1e-4f);
    }
  }
}

TEST(MlpForwardTest, ReluZeroesNegativePreactivations) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  Rng rng(3);
  Matrix x = Matrix::RandomGaussian(2, 4, rng);
  MlpWorkspace ws;
  net.Forward(x, &ws);
  for (size_t k = 0; k < net.num_hidden_layers(); ++k) {
    for (size_t i = 0; i < ws.a[k].size(); ++i) {
      EXPECT_GE(ws.a[k].data()[i], 0.0f);
    }
  }
}

// The decisive correctness test: analytic backprop vs central differences on
// the full loss, over every parameter of a small network.
TEST(MlpBackwardTest, MatchesNumericalGradients) {
  MlpConfig cfg = MlpConfig::Uniform(3, 2, 2, 4);
  cfg.seed = 9;
  cfg.hidden_activation = Activation::kTanh;  // smooth: finite diffs behave
  auto net = std::move(Mlp::Create(cfg)).value();
  Rng rng(4);
  Matrix x = Matrix::RandomGaussian(4, 3, rng);
  std::vector<int32_t> labels{0, 1, 1, 0};

  MlpWorkspace ws;
  Matrix grad_logits;
  net.Forward(x, &ws);
  ASSERT_TRUE(
      SoftmaxCrossEntropy::LossAndGrad(ws.a.back(), labels, &grad_logits).ok());
  MlpGrads grads;
  net.Backward(x, ws, grad_logits, &grads);

  auto loss_at = [&](Mlp& candidate) {
    MlpWorkspace tmp;
    const Matrix& logits = candidate.Forward(x, &tmp);
    return SoftmaxCrossEntropy::Loss(logits, labels).value();
  };
  const float kEps = 1e-2f;
  for (size_t k = 0; k < net.num_layers(); ++k) {
    Matrix& w = net.layer(k).weights();
    for (size_t i = 0; i < w.rows(); ++i) {
      for (size_t j = 0; j < w.cols(); ++j) {
        const float orig = w(i, j);
        w(i, j) = orig + kEps;
        const double lp = loss_at(net);
        w(i, j) = orig - kEps;
        const double lm = loss_at(net);
        w(i, j) = orig;
        EXPECT_NEAR(grads[k].weights(i, j), (lp - lm) / (2.0 * kEps), 5e-3)
            << "layer " << k << " W(" << i << "," << j << ")";
      }
    }
    auto bias = net.layer(k).bias();
    for (size_t j = 0; j < bias.size(); ++j) {
      const float orig = bias[j];
      bias[j] = orig + kEps;
      const double lp = loss_at(net);
      bias[j] = orig - kEps;
      const double lm = loss_at(net);
      bias[j] = orig;
      EXPECT_NEAR(grads[k].bias[j], (lp - lm) / (2.0 * kEps), 5e-3)
          << "layer " << k << " b(" << j << ")";
    }
  }
}

TEST(MlpTest, ZeroGradsShapedLikeNetwork) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  MlpGrads grads = net.ZeroGrads();
  ASSERT_EQ(grads.size(), net.num_layers());
  for (size_t k = 0; k < grads.size(); ++k) {
    EXPECT_EQ(grads[k].weights.rows(), net.layer(k).in_dim());
    EXPECT_EQ(grads[k].weights.cols(), net.layer(k).out_dim());
    EXPECT_EQ(grads[k].bias.size(), net.layer(k).out_dim());
    EXPECT_EQ(grads[k].weights.FrobeniusNorm(), 0.0f);
  }
}

TEST(MlpTest, NumParamsCountsWeightsAndBiases) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  // 4*6+6 + 6*6+6 + 6*3+3 = 30 + 42 + 21 = 93.
  EXPECT_EQ(net.num_params(), 93u);
}

TEST(MlpTest, PredictReturnsClassIds) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  Rng rng(5);
  Matrix x = Matrix::RandomGaussian(6, 4, rng);
  const auto preds = net.Predict(x);
  ASSERT_EQ(preds.size(), 6u);
  for (int32_t p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(MlpTest, CloneIsIndependent) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  Mlp clone = net.Clone();
  clone.layer(0).weights()(0, 0) += 100.0f;
  EXPECT_NE(clone.layer(0).weights()(0, 0), net.layer(0).weights()(0, 0));
}

TEST(MlpTest, ArchitectureString) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  EXPECT_EQ(net.ArchitectureString(), "4-6-6-3 (relu)");
}

TEST(LayerGradsTest, SetZeroClearsWithoutResize) {
  auto net = std::move(Mlp::Create(SmallConfig())).value();
  LayerGrads g = LayerGrads::ZerosLike(net.layer(0));
  g.weights.Fill(3.0f);
  g.bias.assign(g.bias.size(), 2.0f);
  g.SetZero();
  EXPECT_EQ(g.weights.FrobeniusNorm(), 0.0f);
  for (float b : g.bias) EXPECT_EQ(b, 0.0f);
}

}  // namespace
}  // namespace sampnn
