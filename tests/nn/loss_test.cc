#include "src/nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace sampnn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits(2, 4);  // all zeros -> uniform softmax
  std::vector<int32_t> labels{0, 3};
  auto loss = SoftmaxCrossEntropy::Loss(logits, labels);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(loss.value(), std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionNearZeroLoss) {
  auto logits = std::move(Matrix::FromVector(1, 3, {50, 0, 0})).value();
  std::vector<int32_t> labels{0};
  auto loss = SoftmaxCrossEntropy::Loss(logits, labels);
  ASSERT_TRUE(loss.ok());
  EXPECT_LT(loss.value(), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, NumericallyStableForHugeLogits) {
  auto logits = std::move(Matrix::FromVector(1, 2, {10000, 9999})).value();
  std::vector<int32_t> labels{0};
  auto loss = SoftmaxCrossEntropy::Loss(logits, labels);
  ASSERT_TRUE(loss.ok());
  EXPECT_TRUE(std::isfinite(loss.value()));
  EXPECT_NEAR(loss.value(), std::log(1.0 + std::exp(-1.0)), 1e-4);
}

TEST(SoftmaxCrossEntropyTest, ValidatesLabels) {
  Matrix logits(2, 3);
  std::vector<int32_t> wrong_size{0};
  EXPECT_TRUE(SoftmaxCrossEntropy::Loss(logits, wrong_size)
                  .status()
                  .IsInvalidArgument());
  std::vector<int32_t> out_of_range{0, 3};
  EXPECT_TRUE(
      SoftmaxCrossEntropy::Loss(logits, out_of_range).status().IsOutOfRange());
  std::vector<int32_t> negative{0, -1};
  EXPECT_TRUE(
      SoftmaxCrossEntropy::Loss(logits, negative).status().IsOutOfRange());
}

TEST(SoftmaxCrossEntropyTest, GradMatchesSoftmaxMinusOnehot) {
  auto logits = std::move(Matrix::FromVector(1, 3, {1, 2, 3})).value();
  std::vector<int32_t> labels{1};
  Matrix grad;
  auto loss = SoftmaxCrossEntropy::LossAndGrad(logits, labels, &grad);
  ASSERT_TRUE(loss.ok());
  double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(grad(0, 0), std::exp(1.0) / denom, 1e-5);
  EXPECT_NEAR(grad(0, 1), std::exp(2.0) / denom - 1.0, 1e-5);
  EXPECT_NEAR(grad(0, 2), std::exp(3.0) / denom, 1e-5);
}

TEST(SoftmaxCrossEntropyTest, GradMatchesNumericalGradient) {
  Rng rng(5);
  Matrix logits = Matrix::RandomGaussian(3, 5, rng);
  std::vector<int32_t> labels{0, 2, 4};
  Matrix grad;
  ASSERT_TRUE(SoftmaxCrossEntropy::LossAndGrad(logits, labels, &grad).ok());
  const float kEps = 1e-3f;
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t j = 0; j < logits.cols(); ++j) {
      Matrix plus = logits, minus = logits;
      plus(i, j) += kEps;
      minus(i, j) -= kEps;
      const double lp = SoftmaxCrossEntropy::Loss(plus, labels).value();
      const double lm = SoftmaxCrossEntropy::Loss(minus, labels).value();
      EXPECT_NEAR(grad(i, j), (lp - lm) / (2.0 * kEps), 2e-3)
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(SoftmaxCrossEntropyTest, GradRowsSumToZero) {
  Rng rng(11);
  Matrix logits = Matrix::RandomGaussian(4, 6, rng);
  std::vector<int32_t> labels{1, 0, 5, 3};
  Matrix grad;
  ASSERT_TRUE(SoftmaxCrossEntropy::LossAndGrad(logits, labels, &grad).ok());
  for (size_t i = 0; i < grad.rows(); ++i) {
    float sum = 0.0f;
    for (size_t j = 0; j < grad.cols(); ++j) sum += grad(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
  }
}

TEST(LogSoftmaxTest, RowsExponentiateToOne) {
  Rng rng(7);
  Matrix logits = Matrix::RandomGaussian(5, 8, rng);
  Matrix out;
  SoftmaxCrossEntropy::LogSoftmax(logits, &out);
  for (size_t i = 0; i < out.rows(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < out.cols(); ++j) total += std::exp(out(i, j));
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(LogSoftmaxTest, PreservesArgmax) {
  auto logits = std::move(Matrix::FromVector(1, 3, {0.1f, 5.0f, 2.0f})).value();
  Matrix out;
  SoftmaxCrossEntropy::LogSoftmax(logits, &out);
  EXPECT_GT(out(0, 1), out(0, 0));
  EXPECT_GT(out(0, 1), out(0, 2));
}

TEST(PredictTest, ReturnsArgmaxPerRow) {
  auto logits =
      std::move(Matrix::FromVector(2, 3, {1, 9, 2, 7, 0, 3})).value();
  const auto preds = SoftmaxCrossEntropy::Predict(logits);
  EXPECT_EQ(preds, (std::vector<int32_t>{1, 0}));
}

TEST(MseTest, ZeroForEqualMatrices) {
  Matrix a = Matrix::Filled(2, 2, 3.0f);
  auto loss = MeanSquaredError::Loss(a, a);
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(loss.value(), 0.0);
}

TEST(MseTest, KnownValue) {
  Matrix pred = Matrix::Filled(1, 2, 1.0f);
  Matrix target = Matrix::Filled(1, 2, 3.0f);
  // mean((2)^2)/2 = 2.
  auto loss = MeanSquaredError::Loss(pred, target);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(loss.value(), 2.0, 1e-6);
}

TEST(MseTest, ShapeMismatchIsError) {
  Matrix a(1, 2), b(2, 1);
  EXPECT_TRUE(MeanSquaredError::Loss(a, b).status().IsInvalidArgument());
}

TEST(MseTest, GradMatchesNumerical) {
  Rng rng(13);
  Matrix pred = Matrix::RandomGaussian(2, 3, rng);
  Matrix target = Matrix::RandomGaussian(2, 3, rng);
  Matrix grad;
  ASSERT_TRUE(MeanSquaredError::LossAndGrad(pred, target, &grad).ok());
  const float kEps = 1e-3f;
  for (size_t i = 0; i < pred.rows(); ++i) {
    for (size_t j = 0; j < pred.cols(); ++j) {
      Matrix plus = pred, minus = pred;
      plus(i, j) += kEps;
      minus(i, j) -= kEps;
      const double lp = MeanSquaredError::Loss(plus, target).value();
      const double lm = MeanSquaredError::Loss(minus, target).value();
      EXPECT_NEAR(grad(i, j), (lp - lm) / (2.0 * kEps), 1e-3);
    }
  }
}

}  // namespace
}  // namespace sampnn
