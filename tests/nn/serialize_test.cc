#include "src/nn/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/sampnn_model_test.bin";
};

Mlp TrainedLikeNet(uint64_t seed = 9) {
  MlpConfig cfg = MlpConfig::Uniform(6, 3, 2, 8);
  cfg.seed = seed;
  cfg.hidden_activation = Activation::kTanh;
  Mlp net = std::move(Mlp::Create(cfg)).value();
  // Perturb so the parameters differ from any fresh initialization.
  net.layer(1).weights()(2, 3) = 42.5f;
  net.layer(0).bias()[1] = -7.25f;
  return net;
}

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  Mlp original = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(original, path_).ok());
  auto loaded = LoadMlp(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_layers(), original.num_layers());
  EXPECT_EQ(loaded->ArchitectureString(), original.ArchitectureString());
  for (size_t k = 0; k < original.num_layers(); ++k) {
    EXPECT_TRUE(loaded->layer(k).weights().AllClose(
        original.layer(k).weights(), 0.0f));
    EXPECT_EQ(loaded->layer(k).activation(), original.layer(k).activation());
    auto lb = loaded->layer(k).bias();
    auto ob = original.layer(k).bias();
    for (size_t j = 0; j < ob.size(); ++j) EXPECT_EQ(lb[j], ob[j]);
  }
}

TEST_F(SerializeTest, LoadedModelPredictsIdentically) {
  Mlp original = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(original, path_).ok());
  Mlp loaded = std::move(LoadMlp(path_)).value();
  Rng rng(3);
  Matrix x = Matrix::RandomGaussian(10, 6, rng);
  MlpWorkspace ws1, ws2;
  EXPECT_TRUE(
      original.Forward(x, &ws1).AllClose(loaded.Forward(x, &ws2), 0.0f));
}

TEST_F(SerializeTest, NoHiddenLayerModelRoundTrips) {
  MlpConfig cfg = MlpConfig::Uniform(4, 2, 0, 0);
  Mlp net = std::move(Mlp::Create(cfg)).value();
  ASSERT_TRUE(SaveMlp(net, path_).ok());
  auto loaded = LoadMlp(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_layers(), 1u);
}

TEST_F(SerializeTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadMlp("/does/not/exist.bin").status().IsIOError());
}

TEST_F(SerializeTest, BadMagicIsInvalidArgument) {
  std::ofstream out(path_, std::ios::binary);
  out << "JUNKJUNKJUNK";
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, TruncatedFileIsInvalidArgument) {
  Mlp net = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(net, path_).ok());
  // Chop the file in half.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, UnwritablePathIsIOError) {
  Mlp net = TrainedLikeNet();
  EXPECT_TRUE(SaveMlp(net, "/nonexistent-dir-xyz/model.bin").IsIOError());
}

// Helpers for crafting deliberately corrupt "SNN1" images: little-endian
// u64 fields after the 4-byte magic, matching src/nn/serialize.cc.
void PutU64Le(std::ofstream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

TEST_F(SerializeTest, GarbageLayerCountRejectedBeforeAllocating) {
  std::ofstream out(path_, std::ios::binary);
  out.write("SNN1", 4);
  // A corrupt count must be rejected by the plausibility check, not drive
  // a ~2^64-element reserve.
  PutU64Le(out, 0xFFFFFFFFFFFFFFFFull);
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, ImplausibleLayerDimensionRejectedBeforeAllocating) {
  std::ofstream out(path_, std::ios::binary);
  out.write("SNN1", 4);
  PutU64Le(out, 1);          // one layer
  PutU64Le(out, 1ull << 40); // in_dim: absurd
  PutU64Le(out, 8);          // out_dim
  PutU64Le(out, 0);          // activation
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, DeclaredParametersPastEndOfFileRejected) {
  std::ofstream out(path_, std::ios::binary);
  out.write("SNN1", 4);
  PutU64Le(out, 1);   // one layer
  PutU64Le(out, 64);  // in_dim
  PutU64Le(out, 64);  // out_dim: 64x64 weights declared...
  PutU64Le(out, 0);   // activation
  out.write("tiny", 4);  // ...but almost no payload present
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, UnknownActivationIdRejected) {
  std::ofstream out(path_, std::ios::binary);
  out.write("SNN1", 4);
  PutU64Le(out, 1);
  PutU64Le(out, 2);
  PutU64Le(out, 2);
  PutU64Le(out, 9999);  // no such activation
  const std::vector<float> params(6, 0.5f);  // 2x2 weights + 2 bias
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, EveryTruncationPointIsRejectedCleanly) {
  Mlp net = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(net, path_).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // A file cut at ANY byte offset must produce a clean error, never a
  // crash or a silently short model (ASan/UBSan guard the "never a crash").
  for (size_t cut = 0; cut < content.size(); cut += 97) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(cut));
    out.close();
    const Status status = LoadMlp(path_).status();
    EXPECT_FALSE(status.ok()) << "cut at byte " << cut;
  }
}

}  // namespace
}  // namespace sampnn
