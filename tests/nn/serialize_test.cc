#include "src/nn/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/sampnn_model_test.bin";
};

Mlp TrainedLikeNet(uint64_t seed = 9) {
  MlpConfig cfg = MlpConfig::Uniform(6, 3, 2, 8);
  cfg.seed = seed;
  cfg.hidden_activation = Activation::kTanh;
  Mlp net = std::move(Mlp::Create(cfg)).value();
  // Perturb so the parameters differ from any fresh initialization.
  net.layer(1).weights()(2, 3) = 42.5f;
  net.layer(0).bias()[1] = -7.25f;
  return net;
}

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  Mlp original = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(original, path_).ok());
  auto loaded = LoadMlp(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_layers(), original.num_layers());
  EXPECT_EQ(loaded->ArchitectureString(), original.ArchitectureString());
  for (size_t k = 0; k < original.num_layers(); ++k) {
    EXPECT_TRUE(loaded->layer(k).weights().AllClose(
        original.layer(k).weights(), 0.0f));
    EXPECT_EQ(loaded->layer(k).activation(), original.layer(k).activation());
    auto lb = loaded->layer(k).bias();
    auto ob = original.layer(k).bias();
    for (size_t j = 0; j < ob.size(); ++j) EXPECT_EQ(lb[j], ob[j]);
  }
}

TEST_F(SerializeTest, LoadedModelPredictsIdentically) {
  Mlp original = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(original, path_).ok());
  Mlp loaded = std::move(LoadMlp(path_)).value();
  Rng rng(3);
  Matrix x = Matrix::RandomGaussian(10, 6, rng);
  MlpWorkspace ws1, ws2;
  EXPECT_TRUE(
      original.Forward(x, &ws1).AllClose(loaded.Forward(x, &ws2), 0.0f));
}

TEST_F(SerializeTest, NoHiddenLayerModelRoundTrips) {
  MlpConfig cfg = MlpConfig::Uniform(4, 2, 0, 0);
  Mlp net = std::move(Mlp::Create(cfg)).value();
  ASSERT_TRUE(SaveMlp(net, path_).ok());
  auto loaded = LoadMlp(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_layers(), 1u);
}

TEST_F(SerializeTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadMlp("/does/not/exist.bin").status().IsIOError());
}

TEST_F(SerializeTest, BadMagicIsInvalidArgument) {
  std::ofstream out(path_, std::ios::binary);
  out << "JUNKJUNKJUNK";
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, TruncatedFileIsInvalidArgument) {
  Mlp net = TrainedLikeNet();
  ASSERT_TRUE(SaveMlp(net, path_).ok());
  // Chop the file in half.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  EXPECT_TRUE(LoadMlp(path_).status().IsInvalidArgument());
}

TEST_F(SerializeTest, UnwritablePathIsIOError) {
  Mlp net = TrainedLikeNet();
  EXPECT_TRUE(SaveMlp(net, "/nonexistent-dir-xyz/model.bin").IsIOError());
}

}  // namespace
}  // namespace sampnn
