// Rollback vs. in-flight promotion: the lifecycle loop's demotion watch
// calls Rollback() while fine-tune promotions (and, in principle, manual
// promotions) may be mid-pipeline. These tests pin down the concurrency
// contract: a promotion that loses the swap race fails with a *typed*
// Aborted (never a torn flip), rollbacks and promotions interleave freely
// without readers ever observing a null or inconsistent entry, and every
// attempt resolves to exactly one recorded outcome.

#include "src/registry/model_registry.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/mlp.h"
#include "src/serve/model_backend.h"

namespace sampnn {
namespace {

Mlp SmallNet(uint64_t seed = 42) {
  MlpConfig config = MlpConfig::Uniform(/*input_dim=*/4, /*output_dim=*/3,
                                        /*depth=*/1, /*width=*/8);
  config.seed = seed;
  return std::move(Mlp::Create(config)).ValueOrDie("net");
}

CanaryBatch SmallCanary() {
  CanaryBatch canary;
  canary.inputs = Matrix(4, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      canary.inputs(r, c) = 0.1f * static_cast<float>(r + c + 1);
    }
  }
  canary.labels = {0, 1, 2, 0};
  return canary;
}

ModelRegistry::BackendFactory DenseFactory() {
  return [](Mlp model) -> StatusOr<std::shared_ptr<ModelBackend>> {
    return std::shared_ptr<ModelBackend>(MakeDenseBackend(std::move(model)));
  };
}

std::unique_ptr<ModelRegistry> MakeRegistry(RegistryOptions options = {}) {
  return std::move(ModelRegistry::Create(MakeDenseBackend(SmallNet()),
                                         DenseFactory(), options))
      .ValueOrDie("registry");
}

TEST(RollbackRaceTest, RacedPromotionIsTypedAbortedWhileRollbackLands) {
  // Arm the swap-race fault on the third promotion attempt, then run that
  // attempt concurrently with a rollback to v1. Whatever the interleaving,
  // the promotion must fail Aborted (typed, no flip from it) and the
  // rollback must land: both outcomes are deterministic even though the
  // thread schedule is not.
  RegistryOptions options;
  options.promote_fault_spec = "swap-race@3";
  auto registry = MakeRegistry(options);
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  ASSERT_TRUE(registry->Promote(SmallNet(8), {}, SmallCanary()).ok());
  ASSERT_EQ(registry->live_version(), 3u);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto entry = registry->Current();
      ASSERT_NE(entry, nullptr);
      ASSERT_NE(entry->backend, nullptr);
      ASSERT_GE(entry->version, 1u);
      ASSERT_LE(entry->version, 4u);
    }
  });

  Status promote_status;
  Status rollback_status;
  std::thread promoter([&] {
    promote_status =
        registry->Promote(SmallNet(9), {}, SmallCanary()).status();
  });
  std::thread demoter([&] { rollback_status = registry->Rollback(1); });
  promoter.join();
  demoter.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_TRUE(promote_status.IsAborted()) << promote_status.ToString();
  ASSERT_TRUE(rollback_status.ok()) << rollback_status.ToString();
  EXPECT_EQ(registry->live_version(), 1u);
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.rejected_raced, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.promoted, 2u);
}

TEST(RollbackRaceTest, InterleavedPromotionsAndRollbacksKeepEntriesCoherent) {
  // Free-running promoter vs. free-running demoter vs. spinning readers.
  // Rollback targets shift under the demoter's feet, so individual calls
  // may fail FailedPrecondition (target became live) or NotFound (target
  // pruned) — both typed, never a crash or a torn entry. Readers check
  // every pinned entry is fully formed.
  auto registry = MakeRegistry();
  constexpr int kPromotions = 24;

  std::atomic<bool> stop{false};
  std::atomic<int> reader_iterations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto entry = registry->Current();
        ASSERT_NE(entry, nullptr);
        ASSERT_NE(entry->backend, nullptr);
        ASSERT_GE(entry->version, 1u);
        reader_iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<int> rollbacks_ok{0};
  std::atomic<int> rollbacks_typed{0};
  std::thread demoter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Aim one behind the live version: usually retained, sometimes
      // already live again after a racing rollback, sometimes pruned.
      const uint64_t live = registry->live_version();
      const uint64_t target = live > 1 ? live - 1 : 1;
      const Status status = registry->Rollback(target);
      if (status.ok()) {
        rollbacks_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(status.IsFailedPrecondition() || status.IsNotFound())
            << status.ToString();
        rollbacks_typed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int i = 0; i < kPromotions; ++i) {
    const auto version =
        registry->Promote(SmallNet(100 + i), {}, SmallCanary());
    ASSERT_TRUE(version.ok()) << version.status().ToString();
  }
  // Promotions can outrun thread startup; keep the storm observable until
  // every reader has pinned at least one entry.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (reader_iterations.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  demoter.join();
  for (auto& t : readers) t.join();

  EXPECT_GT(reader_iterations.load(), 0);
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.promoted, static_cast<uint64_t>(kPromotions));
  EXPECT_EQ(stats.rollbacks, static_cast<uint64_t>(rollbacks_ok.load()));
  // The registry stays servable after the storm.
  const auto entry = registry->Current();
  ASSERT_NE(entry, nullptr);
  Matrix logits;
  EXPECT_TRUE(entry->backend
                  ->Forward(SmallCanary().inputs, CancelContext{},
                            ServeQuality::kFull, &logits)
                  .ok());
}

}  // namespace
}  // namespace sampnn
