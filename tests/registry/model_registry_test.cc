// ModelRegistry tests: RCU pinning semantics, every gate of the promotion
// pipeline (corrupt / incompatible / regressed / raced), rollback, retention
// pruning, checkpoint-backed promotion, and the registry-local fault
// injector's attempt-counted schedule. All deterministic: faults come from
// specs, timing from a ManualClock, and "regression" from either an
// injected fault or a genuinely poisoned candidate.

#include "src/registry/model_registry.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "src/nn/mlp.h"
#include "src/nn/serialize.h"
#include "src/resilience/checkpoint.h"
#include "src/serve/model_backend.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/crc32.h"
#include "src/util/deadline.h"

namespace sampnn {
namespace {

Mlp SmallNet(uint64_t seed = 42) {
  MlpConfig config = MlpConfig::Uniform(/*input_dim=*/4, /*output_dim=*/3,
                                        /*depth=*/1, /*width=*/8);
  config.seed = seed;
  return std::move(Mlp::Create(config)).ValueOrDie("net");
}

CanaryBatch SmallCanary() {
  CanaryBatch canary;
  canary.inputs = Matrix(4, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      canary.inputs(r, c) = 0.1f * static_cast<float>(r + c + 1);
    }
  }
  canary.labels = {0, 1, 2, 0};
  return canary;
}

ModelRegistry::BackendFactory DenseFactory() {
  return [](Mlp model) -> StatusOr<std::shared_ptr<ModelBackend>> {
    return std::shared_ptr<ModelBackend>(MakeDenseBackend(std::move(model)));
  };
}

std::unique_ptr<ModelRegistry> MakeRegistry(RegistryOptions options = {}) {
  return std::move(ModelRegistry::Create(MakeDenseBackend(SmallNet()),
                                         DenseFactory(), options))
      .ValueOrDie("registry");
}

// Unique per-test scratch directory under the build tree.
std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sampnn_registry_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Writes `net` as the payload of a framed checkpoint at `step`.
void WriteModelCheckpoint(const std::string& dir, uint64_t step,
                          const Mlp& net) {
  std::ostringstream payload;
  ASSERT_TRUE(SaveMlp(net, payload).ok());
  auto writer =
      std::move(CheckpointWriter::Create({dir, /*retain=*/0}))
          .ValueOrDie("writer");
  ASSERT_TRUE(writer.Write(step, payload.str()).ok());
}

class ModelRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::ClearGlobal();
    SetTelemetryEnabled(false);
  }
};

TEST_F(ModelRegistryTest, CreateRejectsNullBackendAndBootsAtVersionOne) {
  EXPECT_TRUE(ModelRegistry::Create(nullptr, DenseFactory(), {})
                  .status()
                  .IsInvalidArgument());
  auto registry = MakeRegistry();
  EXPECT_EQ(registry->live_version(), 1u);
  EXPECT_EQ(registry->Current()->provenance.checkpoint_path, "");
  EXPECT_EQ(registry->LastPromotion().outcome, PromotionOutcome::kNone);
  EXPECT_EQ(registry->RetainedEntries().size(), 1u);
}

TEST_F(ModelRegistryTest, PromoteFlipsAndRetainsPriorVersion) {
  auto registry = MakeRegistry();
  auto version = registry->Promote(SmallNet(7), {}, SmallCanary());
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(version.value(), 2u);
  EXPECT_EQ(registry->live_version(), 2u);
  EXPECT_EQ(registry->LastPromotion().outcome, PromotionOutcome::kPromoted);
  const auto entries = registry->RetainedEntries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->version, 2u);
  EXPECT_EQ(entries[1]->version, 1u);
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.promotions_attempted, 1u);
  EXPECT_EQ(stats.promoted, 1u);
}

TEST_F(ModelRegistryTest, InFlightHoldersKeepServingTheirPinnedVersion) {
  auto registry = MakeRegistry();
  // A "batch" pins the entry it started on.
  const std::shared_ptr<const ModelEntry> pinned = registry->Current();
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  EXPECT_EQ(registry->live_version(), 2u);
  // The pinned v1 entry is still fully servable after the flip.
  EXPECT_EQ(pinned->version, 1u);
  const CanaryBatch canary = SmallCanary();
  Matrix logits;
  EXPECT_TRUE(pinned->backend
                  ->Forward(canary.inputs, CancelContext{},
                            ServeQuality::kFull, &logits)
                  .ok());
  EXPECT_EQ(logits.rows(), canary.inputs.rows());
}

TEST_F(ModelRegistryTest, PromotionWithoutFactoryIsRejected) {
  auto registry =
      std::move(ModelRegistry::Create(MakeDenseBackend(SmallNet()),
                                      /*factory=*/nullptr, {}))
          .ValueOrDie("registry");
  const auto result = registry->Promote(SmallNet(7), {}, SmallCanary());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  EXPECT_EQ(registry->live_version(), 1u);
}

TEST_F(ModelRegistryTest, IncompatibleDimsAreRejected) {
  auto registry = MakeRegistry();
  Mlp wrong = std::move(Mlp::Create(MlpConfig::Uniform(5, 3, 1, 8)))
                  .ValueOrDie("wrong");
  const auto result = registry->Promote(std::move(wrong), {}, SmallCanary());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  EXPECT_EQ(registry->live_version(), 1u);
  EXPECT_EQ(registry->LastPromotion().outcome,
            PromotionOutcome::kRejectedIncompatible);
  EXPECT_EQ(registry->stats().rejected_incompatible, 1u);
}

TEST_F(ModelRegistryTest, GenuinelyPoisonedCandidateTripsTheCanaryGate) {
  auto registry = MakeRegistry();
  Mlp poisoned = SmallNet(7);
  // Poison the (linear) output layer: a NaN there reaches the logits — a
  // hidden-layer NaN would be squashed to 0 by ReLU and evade the gate.
  poisoned.layer(poisoned.num_layers() - 1).weights()(0, 0) =
      std::numeric_limits<float>::quiet_NaN();
  const auto result = registry->Promote(std::move(poisoned), {}, SmallCanary());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  EXPECT_EQ(registry->LastPromotion().outcome,
            PromotionOutcome::kRejectedRegressed);
  EXPECT_EQ(registry->live_version(), 1u);
  // A rejected candidate must not enter the retained set.
  EXPECT_EQ(registry->RetainedEntries().size(), 1u);
}

TEST_F(ModelRegistryTest, InjectedPromotionFaultsRejectWithTypedStatuses) {
  RegistryOptions options;
  options.promote_fault_spec =
      "promote-corrupt@1,promote-regressed@2,swap-race@3";
  auto registry = MakeRegistry(options);

  auto corrupt = registry->Promote(SmallNet(7), {}, SmallCanary());
  EXPECT_TRUE(corrupt.status().IsDataLoss());
  EXPECT_EQ(registry->LastPromotion().outcome,
            PromotionOutcome::kRejectedCorrupt);

  auto regressed = registry->Promote(SmallNet(8), {}, SmallCanary());
  EXPECT_TRUE(regressed.status().IsFailedPrecondition());
  EXPECT_EQ(registry->LastPromotion().outcome,
            PromotionOutcome::kRejectedRegressed);

  auto raced = registry->Promote(SmallNet(9), {}, SmallCanary());
  EXPECT_TRUE(raced.status().IsAborted());
  EXPECT_EQ(registry->LastPromotion().outcome,
            PromotionOutcome::kRejectedRaced);

  // Three rejections, zero flips: v1 never stopped serving.
  EXPECT_EQ(registry->live_version(), 1u);
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.promotions_attempted, 3u);
  EXPECT_EQ(stats.rejected_corrupt, 1u);
  EXPECT_EQ(stats.rejected_regressed, 1u);
  EXPECT_EQ(stats.rejected_raced, 1u);
  EXPECT_EQ(stats.promoted, 0u);

  // The schedule is spent: the fourth attempt sails through.
  auto ok = registry->Promote(SmallNet(10), {}, SmallCanary());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(registry->live_version(), 2u);
}

TEST_F(ModelRegistryTest, LocalFaultScheduleCountsPromotionAttempts) {
  // "@2" on the registry-local injector means "the second promotion
  // attempt", regardless of any global injector traffic.
  RegistryOptions options;
  options.promote_fault_spec = "promote-corrupt@2";
  auto registry = MakeRegistry(options);
  EXPECT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  EXPECT_TRUE(registry->Promote(SmallNet(8), {}, SmallCanary())
                  .status()
                  .IsDataLoss());
  EXPECT_TRUE(registry->Promote(SmallNet(9), {}, SmallCanary()).ok());
  EXPECT_EQ(registry->live_version(), 3u);
}

TEST_F(ModelRegistryTest, RollbackRepinsARetainedVersion) {
  auto registry = MakeRegistry();
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  ASSERT_TRUE(registry->Promote(SmallNet(8), {}, SmallCanary()).ok());
  EXPECT_EQ(registry->live_version(), 3u);

  EXPECT_TRUE(registry->Rollback(3).IsFailedPrecondition());  // already live
  EXPECT_TRUE(registry->Rollback(99).IsNotFound());

  ASSERT_TRUE(registry->Rollback(1).ok());
  EXPECT_EQ(registry->live_version(), 1u);
  EXPECT_EQ(registry->LastPromotion().outcome, PromotionOutcome::kRolledBack);
  EXPECT_EQ(registry->stats().rollbacks, 1u);
  // The displaced v3 is itself retained, so the rollback can be rolled back.
  ASSERT_TRUE(registry->Rollback(3).ok());
  EXPECT_EQ(registry->live_version(), 3u);
}

TEST_F(ModelRegistryTest, RetentionPrunesOldestFirst) {
  RegistryOptions options;
  options.retain = 1;
  auto registry = MakeRegistry(options);
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  ASSERT_TRUE(registry->Promote(SmallNet(8), {}, SmallCanary()).ok());
  ASSERT_TRUE(registry->Promote(SmallNet(9), {}, SmallCanary()).ok());
  const auto entries = registry->RetainedEntries();
  ASSERT_EQ(entries.size(), 2u);  // live + 1 retained
  EXPECT_EQ(entries[0]->version, 4u);
  EXPECT_EQ(entries[1]->version, 3u);
  // v1/v2 aged out: not rollback targets anymore.
  EXPECT_TRUE(registry->Rollback(1).IsNotFound());
}

TEST_F(ModelRegistryTest, PromoteFromDirLoadsValidatesAndStampsProvenance) {
  const std::string dir = ScratchDir("from_dir");
  const Mlp candidate = SmallNet(7);
  WriteModelCheckpoint(dir, /*step=*/12, candidate);
  std::ostringstream payload;
  ASSERT_TRUE(SaveMlp(candidate, payload).ok());

  auto registry = MakeRegistry();
  auto version = registry->PromoteFromDir(dir, SmallCanary());
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  const auto live = registry->Current();
  EXPECT_EQ(live->version, 2u);
  EXPECT_EQ(live->provenance.checkpoint_step, 12u);
  EXPECT_EQ(live->provenance.payload_crc32, Crc32(payload.str()));
  EXPECT_NE(live->provenance.checkpoint_path.find("ckpt-"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(ModelRegistryTest, PromoteFromDirRejectsMissingAndCorruptInputs) {
  auto registry = MakeRegistry();
  // No directory at all -> the loader's NotFound, recorded as a rejection.
  EXPECT_TRUE(registry->PromoteFromDir(ScratchDir("missing"), SmallCanary())
                  .status()
                  .IsNotFound());
  EXPECT_EQ(registry->LastPromotion().outcome,
            PromotionOutcome::kRejectedCorrupt);

  // A frame whose payload is not a model -> kDataLoss.
  const std::string dir = ScratchDir("garbage");
  auto writer = std::move(CheckpointWriter::Create({dir, 0}))
                    .ValueOrDie("writer");
  ASSERT_TRUE(writer.Write(1, "definitely not an SNN1 image").ok());
  const auto result = registry->PromoteFromDir(dir, SmallCanary());
  EXPECT_TRUE(result.status().IsDataLoss());
  EXPECT_EQ(registry->stats().rejected_corrupt, 2u);
  EXPECT_EQ(registry->live_version(), 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(ModelRegistryTest, EmptyCanarySkipsTheGate) {
  auto registry = MakeRegistry();
  Mlp poisoned = SmallNet(7);
  poisoned.layer(poisoned.num_layers() - 1).weights()(0, 0) =
      std::numeric_limits<float>::quiet_NaN();
  // Explicitly opting out of the canary batch promotes even a bad model:
  // the gate only protects callers who feed it.
  EXPECT_TRUE(registry->Promote(std::move(poisoned), {}, CanaryBatch{}).ok());
  EXPECT_EQ(registry->live_version(), 2u);
}

TEST_F(ModelRegistryTest, ManualClockStampsPromotionRecords) {
  ManualClock clock(1000);
  RegistryOptions options;
  options.clock = &clock;
  auto registry = MakeRegistry(options);
  EXPECT_EQ(registry->Current()->promoted_at_ms, 1000);
  clock.AdvanceMillis(250);
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  EXPECT_EQ(registry->Current()->promoted_at_ms, 1250);
  EXPECT_EQ(registry->LastPromotion().at_ms, 1250);
}

TEST_F(ModelRegistryTest, StatuszSectionShowsLiveRetainedAndLastOutcome) {
  RegistryOptions options;
  options.promote_fault_spec = "promote-regressed@2";
  auto registry = MakeRegistry(options);
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  EXPECT_TRUE(registry->Promote(SmallNet(8), {}, SmallCanary())
                  .status()
                  .IsFailedPrecondition());
  const std::string section = registry->RenderStatuszSection();
  EXPECT_NE(section.find("live: v2"), std::string::npos) << section;
  EXPECT_NE(section.find("retained: v1"), std::string::npos) << section;
  EXPECT_NE(section.find("rejected-regressed"), std::string::npos) << section;
  EXPECT_NE(section.find("attempted=2"), std::string::npos) << section;
  EXPECT_NE(section.find("promoted=1"), std::string::npos) << section;
}

TEST_F(ModelRegistryTest, MetricsMirrorOnlyWhenObservabilityIsOn) {
  MetricsRegistry::Get().ResetAll();
  {
    RegistryOptions off;
    off.obs_enabled = [] { return false; };
    auto registry = MakeRegistry(off);
    ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  }
  // Nothing registered: the gauge reads as freshly created (0).
  EXPECT_EQ(MetricsRegistry::Get().GetGauge("registry.live_version").Value(),
            0.0);

  RegistryOptions on;
  on.obs_enabled = [] { return true; };
  auto registry = MakeRegistry(on);
  ASSERT_TRUE(registry->Promote(SmallNet(7), {}, SmallCanary()).ok());
  EXPECT_EQ(MetricsRegistry::Get().GetGauge("registry.live_version").Value(),
            2.0);
  EXPECT_EQ(MetricsRegistry::Get()
                .GetCounter("registry.promote.promoted")
                .Value(),
            1u);
  MetricsRegistry::Get().ResetAll();
}

TEST_F(ModelRegistryTest, ConcurrentReadersNeverSeeANullOrTornEntry) {
  auto registry = MakeRegistry();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_seen{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto entry = registry->Current();
      ASSERT_NE(entry, nullptr);
      ASSERT_NE(entry->backend, nullptr);
      // Versions only move forward under promotion-only traffic.
      const uint64_t v = entry->version;
      uint64_t prev = max_seen.load(std::memory_order_relaxed);
      while (v > prev && !max_seen.compare_exchange_weak(prev, v)) {
      }
      ASSERT_GE(v, 1u);
    }
  });
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        registry->Promote(SmallNet(100 + i), {}, SmallCanary()).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(registry->live_version(), 9u);
}

TEST_F(ModelRegistryTest, FromEnvParsesRetention) {
  const RegistryOptions defaults = RegistryOptions::FromEnv();
  EXPECT_EQ(defaults.retain, 3u);
}

}  // namespace
}  // namespace sampnn
