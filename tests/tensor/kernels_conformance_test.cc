// Randomized conformance sweep: every execution mode of the dense GEMM
// family (deterministic scalar, packed serial, packed ThreadPool-
// partitioned) must match the naive double-precision oracle in
// kernels_reference.h over awkward shapes — unit dims, primes, multiples
// and off-by-ones of the microkernel tile and cache-block sizes — crossed
// with the alpha/beta special cases the kernels branch on. Runs under
// ASan/UBSan and TSan (the tensor label is in the tsan preset filter).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/util/rng.h"
#include "tests/tensor/kernels_reference.h"

namespace sampnn {
namespace {

// Restores every kernel knob on scope exit so tests stay order-independent.
class KernelConfigGuard {
 public:
  KernelConfigGuard() = default;
  ~KernelConfigGuard() {
    SetDeterministicKernels(false);
    SetGemmThreads(0);               // re-resolve from env/hardware
    SetGemmParallelMinFlops(0);      // reset to default threshold
  }
};

enum class Mode { kDeterministic, kPackedSerial, kPackedParallel };

void ApplyMode(Mode mode) {
  switch (mode) {
    case Mode::kDeterministic:
      SetDeterministicKernels(true);
      break;
    case Mode::kPackedSerial:
      SetDeterministicKernels(false);
      SetGemmThreads(1);
      break;
    case Mode::kPackedParallel:
      SetDeterministicKernels(false);
      SetGemmThreads(4);
      SetGemmParallelMinFlops(1);  // every dispatch takes the parallel path
      break;
  }
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kDeterministic:
      return "deterministic";
    case Mode::kPackedSerial:
      return "packed_serial";
    case Mode::kPackedParallel:
      return "packed_parallel";
  }
  return "?";
}

// m/n/k pool: unit and tiny dims, the microkernel tile edges (6, 16), and
// off-by-ones around the L1/L2 block sizes (64, 256).
constexpr size_t kDims[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 63, 64, 65, 257};
constexpr float kAlphas[] = {0.0f, 1.0f, -1.0f, 0.5f};
constexpr float kBetas[] = {0.0f, 1.0f, -1.0f, 0.5f};

// |got - want| <= atol + rtol * |want|, with slack for k float-rounded
// accumulations against the double oracle.
void ExpectClose(const Matrix& got, const Matrix& want, size_t k,
                 const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  const float tol =
      1e-4f * (1.0f + std::sqrt(static_cast<float>(k)));
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      const float w = want(i, j);
      ASSERT_NEAR(got(i, j), w, tol + 1e-4f * std::fabs(w))
          << what << " at (" << i << ", " << j << ")";
    }
  }
}

class ConformanceTest : public ::testing::TestWithParam<Mode> {
 protected:
  KernelConfigGuard guard_;
};

TEST_P(ConformanceTest, GemmRandomizedSweep) {
  ApplyMode(GetParam());
  Rng rng(20240806);
  for (int trial = 0; trial < 48; ++trial) {
    const size_t m = kDims[rng.NextBounded(std::size(kDims))];
    const size_t k = kDims[rng.NextBounded(std::size(kDims))];
    const size_t n = kDims[rng.NextBounded(std::size(kDims))];
    const float alpha = kAlphas[rng.NextBounded(std::size(kAlphas))];
    const float beta = kBetas[rng.NextBounded(std::size(kBetas))];
    Matrix a = Matrix::RandomGaussian(m, k, rng);
    Matrix b = Matrix::RandomGaussian(k, n, rng);
    Matrix c = Matrix::RandomGaussian(m, n, rng);
    Matrix want = c;
    reference::Gemm(a, b, &want, alpha, beta);
    Gemm(a, b, &c, alpha, beta);
    ExpectClose(c, want, k,
                std::string("Gemm[") + ModeName(GetParam()) + "] " +
                    std::to_string(m) + "x" + std::to_string(k) + "x" +
                    std::to_string(n) + " alpha=" + std::to_string(alpha) +
                    " beta=" + std::to_string(beta));
  }
}

TEST_P(ConformanceTest, GemmTransARandomizedSweep) {
  ApplyMode(GetParam());
  Rng rng(76543);
  for (int trial = 0; trial < 48; ++trial) {
    const size_t m = kDims[rng.NextBounded(std::size(kDims))];
    const size_t k = kDims[rng.NextBounded(std::size(kDims))];
    const size_t n = kDims[rng.NextBounded(std::size(kDims))];
    const float alpha = kAlphas[rng.NextBounded(std::size(kAlphas))];
    const float beta = kBetas[rng.NextBounded(std::size(kBetas))];
    Matrix a = Matrix::RandomGaussian(m, k, rng);
    Matrix b = Matrix::RandomGaussian(m, n, rng);
    Matrix c = Matrix::RandomGaussian(k, n, rng);
    Matrix want = c;
    reference::GemmTransA(a, b, &want, alpha, beta);
    GemmTransA(a, b, &c, alpha, beta);
    ExpectClose(c, want, m,
                std::string("GemmTransA[") + ModeName(GetParam()) + "] " +
                    std::to_string(m) + "x" + std::to_string(k) + "x" +
                    std::to_string(n) + " alpha=" + std::to_string(alpha) +
                    " beta=" + std::to_string(beta));
  }
}

TEST_P(ConformanceTest, GemmTransBRandomizedSweep) {
  ApplyMode(GetParam());
  Rng rng(192837);
  for (int trial = 0; trial < 48; ++trial) {
    const size_t m = kDims[rng.NextBounded(std::size(kDims))];
    const size_t k = kDims[rng.NextBounded(std::size(kDims))];
    const size_t n = kDims[rng.NextBounded(std::size(kDims))];
    const float alpha = kAlphas[rng.NextBounded(std::size(kAlphas))];
    const float beta = kBetas[rng.NextBounded(std::size(kBetas))];
    Matrix a = Matrix::RandomGaussian(m, k, rng);
    Matrix b = Matrix::RandomGaussian(n, k, rng);
    Matrix c = Matrix::RandomGaussian(m, n, rng);
    Matrix want = c;
    reference::GemmTransB(a, b, &want, alpha, beta);
    GemmTransB(a, b, &c, alpha, beta);
    ExpectClose(c, want, k,
                std::string("GemmTransB[") + ModeName(GetParam()) + "] " +
                    std::to_string(m) + "x" + std::to_string(k) + "x" +
                    std::to_string(n) + " alpha=" + std::to_string(alpha) +
                    " beta=" + std::to_string(beta));
  }
}

TEST_P(ConformanceTest, VecMatRandomizedSweep) {
  ApplyMode(GetParam());
  Rng rng(55555);
  for (int trial = 0; trial < 48; ++trial) {
    const size_t k = kDims[rng.NextBounded(std::size(kDims))];
    const size_t n = kDims[rng.NextBounded(std::size(kDims))];
    const bool with_bias = rng.NextBounded(2) == 1;
    Matrix w = Matrix::RandomGaussian(k, n, rng);
    std::vector<float> x(k), bias(with_bias ? n : 0);
    for (auto& v : x) v = rng.NextGaussian();
    if (rng.NextBounded(2) == 1) {
      // Exercise the sparse-input fast path: zero a random half of x.
      for (auto& v : x) {
        if (rng.NextBounded(2) == 0) v = 0.0f;
      }
    }
    for (auto& v : bias) v = rng.NextGaussian();
    std::vector<float> got(n), want(n);
    VecMat(x, w, bias, got);
    reference::VecMat(x, w, bias, want);
    const float tol = 1e-4f * (1.0f + std::sqrt(static_cast<float>(k)));
    for (size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(got[j], want[j], tol + 1e-4f * std::fabs(want[j]))
          << "VecMat[" << ModeName(GetParam()) << "] " << k << "x" << n
          << " at " << j;
    }
  }
}

// Pinned worst-case shapes, full alpha/beta cross product: the microkernel
// edge tiles (6/16 boundaries), one shape spanning several KC panels and
// MC blocks, and degenerate single-element products.
TEST_P(ConformanceTest, GemmEdgeShapesFullAlphaBetaCross) {
  ApplyMode(GetParam());
  const size_t shapes[][3] = {
      {1, 1, 1}, {6, 1, 16}, {7, 2, 17}, {5, 257, 15}, {97, 64, 33},
  };
  Rng rng(31415);
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    Matrix a = Matrix::RandomGaussian(m, k, rng);
    Matrix b = Matrix::RandomGaussian(k, n, rng);
    Matrix c0 = Matrix::RandomGaussian(m, n, rng);
    for (float alpha : kAlphas) {
      for (float beta : kBetas) {
        Matrix c = c0;
        Matrix want = c0;
        reference::Gemm(a, b, &want, alpha, beta);
        Gemm(a, b, &c, alpha, beta);
        ExpectClose(c, want, k,
                    std::string("Gemm[") + ModeName(GetParam()) + "] " +
                        std::to_string(m) + "x" + std::to_string(k) + "x" +
                        std::to_string(n) + " alpha=" +
                        std::to_string(alpha) + " beta=" +
                        std::to_string(beta));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ConformanceTest,
                         ::testing::Values(Mode::kDeterministic,
                                           Mode::kPackedSerial,
                                           Mode::kPackedParallel),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return ModeName(info.param);
                         });

}  // namespace
}  // namespace sampnn
