// The blocked five-loop GEMM nest: conformance of the Mc/Kc/Nc blocking
// (edge tiles, awkward shapes, transposed operands) against the
// double-precision oracle, bitwise thread-invariance of the fixed task
// grid, concurrent dispatches over the shared packed-B pool (the TSan
// surface the shared panel adds), cancellation mid-product, block-size
// normalization, and the worker clamp.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/tensor/packed_buffer_pool.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"
#include "tests/tensor/kernels_reference.h"

namespace sampnn {
namespace {

class GemmBlockedTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetDeterministicKernels(false);
    SetGemmThreads(0);
    SetGemmParallelMinFlops(0);
    SetGemmBlockSizes(0, 0, 0);
    SetGemmOversubscribe(false);
  }
};

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void ExpectClose(const Matrix& got, const Matrix& want, size_t k) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  const float tol = 1e-4f * (1.0f + std::sqrt(static_cast<float>(k)));
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      ASSERT_NEAR(got(i, j), want(i, j), tol)
          << "at (" << i << ", " << j << ") with k=" << k;
    }
  }
}

// Tiny blocks force every loop of the nest to wrap — a 97-deep product
// crosses six Kc boundaries, a 65-wide one three Nc panels — so the sweep
// exercises every interior/edge tile combination the derived (large)
// blocking would never reach at test sizes.
TEST_F(GemmBlockedTest, AwkwardShapeSweepAgainstOracle) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);
  SetGemmBlockSizes(12, 16, 32);
  SetGemmOversubscribe(true);  // real multi-worker nests even on 1 core
  const size_t dims[] = {1, 5, 6, 7, 17, 63, 65, 97};
  Rng rng(20250808);
  for (size_t m : dims) {
    for (size_t n : dims) {
      for (size_t k : dims) {
        // Randomize the rest of the configuration per shape: thread count,
        // alpha/beta, and which of the 512 shape triples get the transposed
        // variants (the full cross product would be 4k products).
        const size_t threads = 1 + rng.NextBounded(4);
        SetGemmThreads(threads);
        const float alpha = 0.25f * (1 + static_cast<int>(rng.NextBounded(8)));
        const float beta = rng.NextBounded(2) == 0 ? 0.0f : -0.5f;
        Matrix a = Matrix::RandomGaussian(m, k, rng);
        Matrix b = Matrix::RandomGaussian(k, n, rng);
        Matrix c0 = Matrix::RandomGaussian(m, n, rng);

        Matrix got = c0;
        Gemm(a, b, &got, alpha, beta);
        Matrix want = c0;
        reference::Gemm(a, b, &want, alpha, beta);
        ExpectClose(got, want, k);

        if (rng.NextBounded(4) == 0) {
          Matrix at = Matrix::RandomGaussian(k, m, rng);
          Matrix bk = Matrix::RandomGaussian(k, n, rng);
          Matrix got_t(m, n);
          GemmTransA(at, bk, &got_t, alpha, 0.0f);
          Matrix want_t(m, n);
          reference::GemmTransA(at, bk, &want_t, alpha, 0.0f);
          ExpectClose(got_t, want_t, k);
        }
        if (rng.NextBounded(4) == 0) {
          Matrix bt = Matrix::RandomGaussian(n, k, rng);
          Matrix got_t = c0;
          GemmTransB(a, bt, &got_t, alpha, beta);
          Matrix want_t = c0;
          reference::GemmTransB(a, bt, &want_t, alpha, beta);
          ExpectClose(got_t, want_t, k);
        }
      }
    }
  }
}

// The task grid is a function of shape and blocking only, and every C
// element keeps one writer accumulating in pc order — so 1, 2, and 4
// workers must produce identical bits, including with blocks small enough
// that one product spans many panels.
TEST_F(GemmBlockedTest, WorkerCountInvariantBits) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);
  SetGemmBlockSizes(12, 16, 32);
  SetGemmOversubscribe(true);
  Rng rng(4711);
  const size_t m = 67, k = 129, n = 83;
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(k, n, rng);
  Matrix c0 = Matrix::RandomGaussian(m, n, rng);

  auto run = [&](size_t threads) {
    SetGemmThreads(threads);
    Matrix c = c0;
    Gemm(a, b, &c, 0.75f, 1.0f);
    return c;
  };
  const Matrix r1 = run(1);
  const Matrix r2 = run(2);
  const Matrix r4 = run(4);
  EXPECT_TRUE(BitwiseEqual(r1, r2));
  EXPECT_TRUE(BitwiseEqual(r1, r4));
}

// Changing Mc/Nc (the grid partition) must not change bits either — only
// Kc regroups partial sums. This pins the documented determinism contract.
TEST_F(GemmBlockedTest, McNcPartitioningDoesNotChangeBits) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);
  SetGemmOversubscribe(true);
  SetGemmThreads(3);
  Rng rng(999);
  const size_t m = 50, k = 64, n = 70;
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(k, n, rng);
  Matrix c0 = Matrix::RandomGaussian(m, n, rng);

  auto run = [&](size_t mc, size_t nc) {
    SetGemmBlockSizes(mc, /*kc=*/16, nc);
    Matrix c = c0;
    Gemm(a, b, &c, 1.0f, 1.0f);
    return c;
  };
  const Matrix base = run(12, 32);
  EXPECT_TRUE(BitwiseEqual(base, run(24, 32)));
  EXPECT_TRUE(BitwiseEqual(base, run(12, 64)));
  EXPECT_TRUE(BitwiseEqual(base, run(600, 4096)));
}

// Concurrent dispatches from independent caller threads, each fanning out
// to its own multi-worker grid over a pool-checked-out shared B panel.
// This is the shared-state surface the pool adds; run under TSan via the
// tensor label. Each caller verifies its own numerical result.
TEST_F(GemmBlockedTest, ConcurrentBlockedDispatchesShareThePool) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);
  SetGemmBlockSizes(12, 16, 32);
  SetGemmOversubscribe(true);
  SetGemmThreads(2);
  constexpr int kCallers = 4;
  constexpr int kReps = 8;
  Rng seed_rng(314159);
  std::vector<uint64_t> seeds;
  for (int i = 0; i < kCallers; ++i) seeds.push_back(seed_rng.NextU64());

  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      Rng rng(seeds[t]);
      const size_t m = 30 + 7 * t, k = 65 + 5 * t, n = 40 + 9 * t;
      Matrix a = Matrix::RandomGaussian(m, k, rng);
      Matrix b = Matrix::RandomGaussian(k, n, rng);
      Matrix want(m, n);
      reference::Gemm(a, b, &want, 1.0f, 0.0f);
      const float tol = 1e-4f * (1.0f + std::sqrt(static_cast<float>(k)));
      for (int rep = 0; rep < kReps; ++rep) {
        Matrix c(m, n);
        Gemm(a, b, &c, 1.0f, 0.0f);
        for (size_t i = 0; i < m; ++i) {
          for (size_t j = 0; j < n; ++j) {
            if (std::abs(c(i, j) - want(i, j)) > tol) {
              failures.fetch_add(1, std::memory_order_relaxed);
              return;
            }
          }
        }
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Steady-state dispatches must not allocate panel buffers: after a warmup
// checkout returns its buffer to the freelist, repeat GEMMs are served
// entirely from the pool.
TEST_F(GemmBlockedTest, SteadyStateGemmReusesPooledPanels) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);
  SetGemmBlockSizes(12, 16, 32);
  Rng rng(2718);
  Matrix a = Matrix::RandomGaussian(48, 64, rng);
  Matrix b = Matrix::RandomGaussian(64, 48, rng);
  Matrix c(48, 48);
  Gemm(a, b, &c, 1.0f, 0.0f);  // warmup: seeds the freelist

  PackedBufferPool& pool = PackedBufferPool::Global();
  const uint64_t allocs_before = pool.Allocations();
  const uint64_t reuses_before = pool.Reuses();
  for (int i = 0; i < 16; ++i) Gemm(a, b, &c, 1.0f, 0.0f);
  EXPECT_EQ(pool.Allocations(), allocs_before);
  EXPECT_GE(pool.Reuses(), reuses_before + 16);
}

TEST_F(GemmBlockedTest, PoolAcquireGrowsAndRecycles) {
  PackedBufferPool pool;
  EXPECT_EQ(pool.IdleCount(), 0u);
  {
    PackedBufferPool::Handle h = pool.Acquire(1024);
    EXPECT_NE(h.data(), nullptr);
    EXPECT_GE(h.size(), 1024u);
    // 64-byte alignment contract for the aligned microkernel loads.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(h.data()) % 64, 0u);
  }
  EXPECT_EQ(pool.IdleCount(), 1u);
  EXPECT_EQ(pool.Allocations(), 1u);
  {
    // A bigger request reuses (and grows) the idle buffer, no fresh alloc.
    PackedBufferPool::Handle h = pool.Acquire(4096);
    EXPECT_GE(h.size(), 4096u);
    EXPECT_EQ(pool.Allocations(), 1u);
    EXPECT_EQ(pool.Reuses(), 1u);
    EXPECT_EQ(pool.IdleCount(), 0u);
  }
  EXPECT_EQ(pool.IdleCount(), 1u);
}

// A cancelled context stops the product between panels: C keeps its
// beta-scaled value, the product is never added, and nothing crashes or
// deadlocks when the cancel lands while the grid is mid-flight.
TEST_F(GemmBlockedTest, CancellationStopsTheNest) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);
  SetGemmBlockSizes(12, 16, 32);
  SetGemmOversubscribe(true);
  SetGemmThreads(2);
  Rng rng(1618);
  const size_t m = 60, k = 96, n = 64;
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(k, n, rng);
  Matrix c0 = Matrix::RandomGaussian(m, n, rng);

  // Pre-cancelled: beta is applied by the dispatch wrapper, then the nest
  // early-outs before any microkernel writes.
  CancelContext cancelled;
  cancelled.token.Cancel();
  {
    ScopedKernelCancellation scope(&cancelled);
    Matrix c = c0;
    Gemm(a, b, &c, 1.0f, 0.5f);
    Matrix want = c0;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) want(i, j) *= 0.5f;
    }
    EXPECT_TRUE(BitwiseEqual(c, want));
  }

  // Mid-flight: cancel from another thread while products stream; the loop
  // must terminate promptly and later (uncancelled) products are intact.
  CancelContext live;
  {
    ScopedKernelCancellation scope(&live);
    std::thread canceller([&] { live.token.Cancel(); });
    for (int i = 0; i < 50 && !live.ShouldStop(); ++i) {
      Matrix c = c0;
      Gemm(a, b, &c, 1.0f, 0.0f);
    }
    canceller.join();
  }
  Matrix c = c0;
  Gemm(a, b, &c, 1.0f, 0.0f);
  Matrix want(m, n);
  reference::Gemm(a, b, &want, 1.0f, 0.0f);
  ExpectClose(c, want, k);
}

TEST_F(GemmBlockedTest, BlockSizeOverridesAreNormalized) {
  // Raw overrides are rounded down to the microtile units (mc: 6, kc: 8,
  // nc: 16) and clamped to at least one unit.
  SetGemmBlockSizes(13, 20, 40);
  GemmBlocking blk = GemmBlockSizes();
  EXPECT_EQ(blk.mc, 12u);
  EXPECT_EQ(blk.kc, 16u);
  EXPECT_EQ(blk.nc, 32u);
  SetGemmBlockSizes(1, 1, 1);
  blk = GemmBlockSizes();
  EXPECT_EQ(blk.mc, 6u);
  EXPECT_EQ(blk.kc, 8u);
  EXPECT_EQ(blk.nc, 16u);
  // Zeroed fields re-derive from cache geometry; derived values keep the
  // same invariants.
  SetGemmBlockSizes(0, 0, 0);
  blk = GemmBlockSizes();
  EXPECT_GT(blk.mc, 0u);
  EXPECT_GT(blk.kc, 0u);
  EXPECT_GT(blk.nc, 0u);
  EXPECT_EQ(blk.mc % 6, 0u);
  EXPECT_EQ(blk.kc % 8, 0u);
  EXPECT_EQ(blk.nc % 16, 0u);
}

TEST_F(GemmBlockedTest, EffectiveWorkersClampToHardware) {
  const size_t hw =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(GemmEffectiveWorkers(1), 1u);
  EXPECT_EQ(GemmEffectiveWorkers(hw), hw);
  EXPECT_EQ(GemmEffectiveWorkers(hw * 4), hw);
  SetGemmOversubscribe(true);
  EXPECT_EQ(GemmEffectiveWorkers(hw * 4), hw * 4);
  SetGemmOversubscribe(false);
  EXPECT_EQ(GemmEffectiveWorkers(hw * 4), hw);
}

TEST_F(GemmBlockedTest, CacheGeometryDetectionIsSane) {
  const CacheGeometry geo = DetectCacheGeometry();
  // Zero means "unknown" (derivation falls back to defaults); any detected
  // level must be a plausible size.
  if (geo.l1d_bytes != 0) {
    EXPECT_GE(geo.l1d_bytes, 4u * 1024);
    EXPECT_LE(geo.l1d_bytes, 1u * 1024 * 1024);
  }
  if (geo.l2_bytes != 0) {
    EXPECT_GE(geo.l2_bytes, 64u * 1024);
  }
  const GemmBlocking blk = GemmBlockSizes();
  // The packed B panel (kc x nc floats) stays within a sane bound even on
  // huge-L3 hosts: the derivation caps its budget at 16 MB.
  EXPECT_LE(blk.kc * blk.nc * sizeof(float), 16u * 1024 * 1024);
}

}  // namespace
}  // namespace sampnn
