// Threading behavior of the packed GEMM path: bitwise invariance across
// worker counts, concurrent dispatch from independent caller threads (the
// TSan surface), serial/parallel dispatch telemetry, deterministic-mode
// equivalence, and the 64-byte alignment contract the microkernel's
// aligned packs rely on.

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/kernel_config.h"
#include "src/tensor/kernels.h"
#include "src/telemetry/metrics_registry.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "tests/tensor/kernels_reference.h"

namespace sampnn {
namespace {

class GemmParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetDeterministicKernels(false);
    SetGemmThreads(0);
    SetGemmParallelMinFlops(0);
  }
};

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Row-block partitioning gives every output element exactly one writer that
// accumulates in a fixed order, so the packed path must produce identical
// bits no matter how many workers split the rows.
TEST_F(GemmParallelTest, ThreadCountDoesNotChangeBits) {
  SetDeterministicKernels(false);
  SetGemmParallelMinFlops(1);  // parallel path even for small products
  Rng rng(8086);
  const size_t m = 61, k = 129, n = 47;
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(k, n, rng);
  // GemmTransA: A(k x m), B(k x n) -> C(m x n). GemmTransB: B^T is (n x k).
  Matrix at = Matrix::RandomGaussian(k, m, rng);
  Matrix ta_b = Matrix::RandomGaussian(k, n, rng);
  Matrix bt = Matrix::RandomGaussian(n, k, rng);
  Matrix c0 = Matrix::RandomGaussian(m, n, rng);

  struct Results {
    Matrix gemm, trans_a, trans_b;
  };
  auto run_all = [&](size_t threads) {
    SetGemmThreads(threads);
    Results r;
    r.gemm = c0;
    Gemm(a, b, &r.gemm, 0.5f, 1.0f);
    r.trans_a = Matrix(m, n);
    GemmTransA(at, ta_b, &r.trans_a, 1.0f, 0.0f);
    r.trans_b = c0;
    GemmTransB(a, bt, &r.trans_b, -1.0f, 0.5f);
    return r;
  };

  const Results r1 = run_all(1);
  const Results r2 = run_all(2);
  const Results r4 = run_all(4);
  EXPECT_TRUE(BitwiseEqual(r1.gemm, r2.gemm));
  EXPECT_TRUE(BitwiseEqual(r1.gemm, r4.gemm));
  EXPECT_TRUE(BitwiseEqual(r1.trans_a, r2.trans_a));
  EXPECT_TRUE(BitwiseEqual(r1.trans_a, r4.trans_a));
  EXPECT_TRUE(BitwiseEqual(r1.trans_b, r2.trans_b));
  EXPECT_TRUE(BitwiseEqual(r1.trans_b, r4.trans_b));
}

// Several caller threads dispatching partitioned GEMMs into the shared
// kernel pool at once: each owns its operands and output, so the only
// shared state is the pool and the thread-local pack buffers. This is the
// test TSan watches.
TEST_F(GemmParallelTest, ConcurrentCallersAreRaceFree) {
  SetDeterministicKernels(false);
  SetGemmThreads(4);
  SetGemmParallelMinFlops(1);
  constexpr int kCallers = 4;
  constexpr int kRepeats = 3;
  std::vector<Matrix> results(kCallers);
  std::vector<Matrix> expected(kCallers);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &results, &expected] {
      Rng rng(1000 + t);
      const size_t m = 33 + t, k = 65 + t, n = 29 + t;
      Matrix a = Matrix::RandomGaussian(m, k, rng);
      Matrix b = Matrix::RandomGaussian(k, n, rng);
      Matrix c(m, n);
      for (int r = 0; r < kRepeats; ++r) {
        Gemm(a, b, &c, 1.0f, 0.0f);
      }
      Matrix want(m, n);
      reference::Gemm(a, b, &want, 1.0f, 0.0f);
      results[t] = std::move(c);
      expected[t] = std::move(want);
    });
  }
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    ASSERT_EQ(results[t].rows(), expected[t].rows());
    for (size_t i = 0; i < results[t].size(); ++i) {
      EXPECT_NEAR(results[t].data()[i], expected[t].data()[i], 1e-3f)
          << "caller " << t << " index " << i;
    }
  }
}

// Products under the FLOP threshold stay serial and are tallied as such;
// big products go parallel. Counters are process-global, so assert deltas.
TEST_F(GemmParallelTest, DispatchCountersTrackThreshold) {
  const bool telemetry_was_on = TelemetryEnabled();
  SetTelemetryEnabled(true);
  SetDeterministicKernels(false);
  SetGemmThreads(4);
  SetGemmParallelMinFlops(2ull * 64 * 64 * 64);  // 512 KFLOP threshold

  Counter& parallel =
      MetricsRegistry::Get().GetCounter("tensor.gemm.parallel_dispatches");
  Counter& serial =
      MetricsRegistry::Get().GetCounter("tensor.gemm.serial_dispatches");
  const uint64_t p0 = parallel.Value();
  const uint64_t s0 = serial.Value();

  Rng rng(404);
  Matrix small_a = Matrix::RandomGaussian(8, 8, rng);
  Matrix small_b = Matrix::RandomGaussian(8, 8, rng);
  Matrix small_c(8, 8);
  Gemm(small_a, small_b, &small_c);  // 1 KFLOP: below threshold

  Matrix big_a = Matrix::RandomGaussian(64, 64, rng);
  Matrix big_b = Matrix::RandomGaussian(64, 64, rng);
  Matrix big_c(64, 64);
  Gemm(big_a, big_b, &big_c);  // exactly at threshold: parallel

  EXPECT_EQ(serial.Value(), s0 + 1);
  EXPECT_EQ(parallel.Value(), p0 + 1);

  // Deterministic mode bypasses the dispatcher entirely: no new tallies.
  SetDeterministicKernels(true);
  Gemm(big_a, big_b, &big_c);
  EXPECT_EQ(serial.Value(), s0 + 1);
  EXPECT_EQ(parallel.Value(), p0 + 1);

  SetTelemetryEnabled(telemetry_was_on);
}

// SAMPNN_DETERMINISTIC_KERNELS must yield bits that do not depend on the
// thread knob at all (it never consults it).
TEST_F(GemmParallelTest, DeterministicModeIgnoresThreadKnob) {
  SetDeterministicKernels(true);
  Rng rng(777);
  Matrix a = Matrix::RandomGaussian(37, 83, rng);
  Matrix b = Matrix::RandomGaussian(83, 41, rng);
  Matrix c1(37, 41), c4(37, 41);
  SetGemmThreads(1);
  Gemm(a, b, &c1);
  SetGemmThreads(4);
  Gemm(a, b, &c4);
  EXPECT_TRUE(BitwiseEqual(c1, c4));

  Matrix want(37, 41);
  reference::Gemm(a, b, &want, 1.0f, 0.0f);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], want.data()[i], 1e-3f);
  }
}

// The microkernel issues aligned 32-byte loads from the pack buffers and
// benefits from aligned C rows; Matrix guarantees 64-byte storage.
TEST_F(GemmParallelTest, MatrixStorageIsCacheLineAligned) {
  for (size_t rows : {1, 3, 64, 257}) {
    Matrix m(rows, rows);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u)
        << rows << "x" << rows;
  }
  Rng rng(5);
  Matrix g = Matrix::RandomGaussian(6, 16, rng);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(g.data()) % 64, 0u);
  Matrix copy = g;
  EXPECT_EQ(reinterpret_cast<uintptr_t>(copy.data()) % 64, 0u);
  Matrix moved = std::move(copy);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(moved.data()) % 64, 0u);
}

}  // namespace
}  // namespace sampnn
