// Reference oracle for the dense kernel conformance sweeps: naive triple
// loops with double-precision accumulation, no blocking, no vectorization,
// no early-outs. Deliberately dumb — every optimized path in
// src/tensor/kernels.h is judged against these.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/tensor/matrix.h"

namespace sampnn::reference {

/// C = alpha * A(m x k) * B(k x n) + beta * C. alpha == 0 contributes
/// exactly zero product terms; beta == 0 ignores C's prior contents
/// (BLAS semantics, matching the optimized kernels).
inline void Gemm(const Matrix& a, const Matrix& b, Matrix* c, float alpha,
                 float beta) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      if (alpha != 0.0f) {
        for (size_t l = 0; l < k; ++l) {
          acc += static_cast<double>(a(i, l)) * static_cast<double>(b(l, j));
        }
      }
      const double prior =
          beta == 0.0f ? 0.0 : static_cast<double>(beta) * (*c)(i, j);
      (*c)(i, j) = static_cast<float>(static_cast<double>(alpha) * acc +
                                      prior);
    }
  }
}

/// C = alpha * A^T(m x k) * B(m x n) + beta * C(k x n).
inline void GemmTransA(const Matrix& a, const Matrix& b, Matrix* c,
                       float alpha, float beta) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t l = 0; l < k; ++l) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      if (alpha != 0.0f) {
        for (size_t i = 0; i < m; ++i) {
          acc += static_cast<double>(a(i, l)) * static_cast<double>(b(i, j));
        }
      }
      const double prior =
          beta == 0.0f ? 0.0 : static_cast<double>(beta) * (*c)(l, j);
      (*c)(l, j) = static_cast<float>(static_cast<double>(alpha) * acc +
                                      prior);
    }
  }
}

/// C = alpha * A(m x k) * B^T(n x k) + beta * C(m x n).
inline void GemmTransB(const Matrix& a, const Matrix& b, Matrix* c,
                       float alpha, float beta) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      if (alpha != 0.0f) {
        for (size_t l = 0; l < k; ++l) {
          acc += static_cast<double>(a(i, l)) * static_cast<double>(b(j, l));
        }
      }
      const double prior =
          beta == 0.0f ? 0.0 : static_cast<double>(beta) * (*c)(i, j);
      (*c)(i, j) = static_cast<float>(static_cast<double>(alpha) * acc +
                                      prior);
    }
  }
}

/// y(1 x n) = x(1 x k) * W(k x n) + bias.
inline void VecMat(std::span<const float> x, const Matrix& w,
                   std::span<const float> bias, std::span<float> y) {
  const size_t k = w.rows(), n = w.cols();
  for (size_t j = 0; j < n; ++j) {
    double acc = bias.empty() ? 0.0 : static_cast<double>(bias[j]);
    for (size_t i = 0; i < k; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(w(i, j));
    }
    y[j] = static_cast<float>(acc);
  }
}

}  // namespace sampnn::reference
