#include "src/tensor/kernels.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace sampnn {
namespace {

// Naive triple-loop reference.
Matrix NaiveMatmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
  return c;
}

using GemmShape = std::tuple<size_t, size_t, size_t>;  // m, k, n

class GemmShapeTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapeTest, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(k, n, rng);
  Matrix c(m, n);
  Gemm(a, b, &c);
  EXPECT_TRUE(c.AllClose(NaiveMatmul(a, b), 1e-3f));
}

TEST_P(GemmShapeTest, TransAMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Matrix a = Matrix::RandomGaussian(m, k, rng);  // use A^T: (k x m)^T
  Matrix b = Matrix::RandomGaussian(m, n, rng);
  Matrix c(k, n);
  GemmTransA(a, b, &c);
  EXPECT_TRUE(c.AllClose(NaiveMatmul(a.Transposed(), b), 1e-3f));
}

TEST_P(GemmShapeTest, TransBMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(3 * m + k - n);
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(n, k, rng);
  Matrix c(m, n);
  GemmTransB(a, b, &c);
  EXPECT_TRUE(c.AllClose(NaiveMatmul(a, b.Transposed()), 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{1, 8, 5},
                      GemmShape{5, 1, 7}, GemmShape{3, 3, 3},
                      GemmShape{17, 33, 9}, GemmShape{64, 64, 64},
                      GemmShape{2, 100, 300}, GemmShape{65, 129, 257}));

TEST(GemmTest, AlphaScales) {
  Rng rng(1);
  Matrix a = Matrix::RandomGaussian(4, 4, rng);
  Matrix b = Matrix::RandomGaussian(4, 4, rng);
  Matrix c1(4, 4), c2(4, 4);
  Gemm(a, b, &c1, 1.0f);
  Gemm(a, b, &c2, 2.5f);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c2.data()[i], 2.5f * c1.data()[i], 1e-4f);
  }
}

TEST(GemmTest, BetaAccumulates) {
  Rng rng(2);
  Matrix a = Matrix::RandomGaussian(3, 3, rng);
  Matrix b = Matrix::RandomGaussian(3, 3, rng);
  Matrix c = Matrix::Filled(3, 3, 1.0f);
  Gemm(a, b, &c, 1.0f, 1.0f);
  Matrix expected = NaiveMatmul(a, b);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i] + 1.0f, 1e-4f);
  }
}

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  Rng rng(3);
  Matrix a = Matrix::RandomGaussian(3, 3, rng);
  Matrix b = Matrix::RandomGaussian(3, 3, rng);
  Matrix c = Matrix::Filled(3, 3, 999.0f);
  Gemm(a, b, &c, 1.0f, 0.0f);
  EXPECT_TRUE(c.AllClose(NaiveMatmul(a, b), 1e-3f));
}

TEST(VecMatTest, MatchesGemmRow) {
  Rng rng(4);
  Matrix w = Matrix::RandomGaussian(10, 6, rng);
  Matrix x = Matrix::RandomGaussian(1, 10, rng);
  std::vector<float> bias(6);
  for (auto& v : bias) v = rng.NextGaussian();
  std::vector<float> y(6);
  VecMat(x.Row(0), w, bias, y);
  Matrix expected = NaiveMatmul(x, w);
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(y[j], expected(0, j) + bias[j], 1e-4f);
  }
}

TEST(VecMatTest, EmptyBiasMeansZero) {
  Rng rng(5);
  Matrix w = Matrix::RandomGaussian(4, 3, rng);
  std::vector<float> x{1, 2, 3, 4};
  std::vector<float> y(3);
  VecMat(x, w, {}, y);
  Matrix xm = std::move(Matrix::FromVector(1, 4, x)).value();
  Matrix expected = NaiveMatmul(xm, w);
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(y[j], expected(0, j), 1e-4f);
}

TEST(AddRowVectorTest, BroadcastsOverRows) {
  Matrix m = Matrix::Filled(3, 2, 1.0f);
  std::vector<float> v{10.0f, 20.0f};
  AddRowVector(&m, v);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m(i, 0), 11.0f);
    EXPECT_EQ(m(i, 1), 21.0f);
  }
}

TEST(HadamardTest, ElementwiseProduct) {
  auto a = std::move(Matrix::FromVector(2, 2, {1, 2, 3, 4})).value();
  auto b = std::move(Matrix::FromVector(2, 2, {5, 6, 7, 8})).value();
  HadamardInPlace(&a, b);
  EXPECT_EQ(a(0, 0), 5.0f);
  EXPECT_EQ(a(0, 1), 12.0f);
  EXPECT_EQ(a(1, 0), 21.0f);
  EXPECT_EQ(a(1, 1), 32.0f);
}

TEST(AxpyTest, AddsScaled) {
  Matrix x = Matrix::Filled(2, 2, 3.0f);
  Matrix y = Matrix::Filled(2, 2, 1.0f);
  Axpy(-2.0f, x, &y);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y.data()[i], -5.0f);
}

TEST(ScaleTest, MultipliesInPlace) {
  Matrix m = Matrix::Filled(2, 3, 4.0f);
  Scale(&m, 0.25f);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 1.0f);
}

TEST(ColumnSumsTest, SumsEachColumn) {
  auto m = std::move(Matrix::FromVector(3, 2, {1, 10, 2, 20, 3, 30})).value();
  std::vector<float> sums(2);
  ColumnSums(m, sums);
  EXPECT_EQ(sums[0], 6.0f);
  EXPECT_EQ(sums[1], 60.0f);
}

// --- Sparse/active-set kernels: each must agree with its dense analogue ---

TEST(VecMatColsTest, MatchesDenseOnActiveColumns) {
  Rng rng(6);
  Matrix w = Matrix::RandomGaussian(12, 8, rng);
  std::vector<float> x(12), bias(8), dense(8), sparse(8, -77.0f);
  for (auto& v : x) v = rng.NextGaussian();
  for (auto& v : bias) v = rng.NextGaussian();
  VecMat(x, w, bias, dense);
  const std::vector<uint32_t> active{1, 3, 6};
  VecMatCols(x, w, bias, active, sparse);
  for (uint32_t j : active) EXPECT_NEAR(sparse[j], dense[j], 1e-4f);
  // Untouched entries keep their previous value.
  EXPECT_EQ(sparse[0], -77.0f);
  EXPECT_EQ(sparse[7], -77.0f);
}

TEST(SparseDotTest, MatchesRestrictedSum) {
  Rng rng(7);
  Matrix w = Matrix::RandomGaussian(6, 4, rng);
  std::vector<float> x(6);
  for (auto& v : x) v = rng.NextGaussian();
  const std::vector<uint32_t> rows{0, 2, 5};
  float expected = 0.0f;
  for (uint32_t i : rows) expected += x[i] * w(i, 2);
  EXPECT_NEAR(SparseDot(x, w, 2, rows), expected, 1e-5f);
}

TEST(BackpropActiveColsTest, MatchesDenseWithMaskedDelta) {
  Rng rng(8);
  Matrix w = Matrix::RandomGaussian(9, 7, rng);
  std::vector<float> delta(7);
  for (auto& v : delta) v = rng.NextGaussian();
  const std::vector<uint32_t> active{0, 4, 5};
  // Dense reference: delta masked to active columns, times W^T.
  std::vector<float> expected(9, 0.0f);
  for (uint32_t j : active) {
    for (size_t i = 0; i < 9; ++i) expected[i] += delta[j] * w(i, j);
  }
  std::vector<float> got(9, 0.0f);
  BackpropActiveCols(delta, w, active, got);
  for (size_t i = 0; i < 9; ++i) EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

TEST(SparseOuterUpdateTest, MatchesDenseSgdOnActiveColumns) {
  Rng rng(9);
  Matrix w = Matrix::RandomGaussian(5, 6, rng);
  Matrix w_ref = w;
  std::vector<float> bias(6, 0.5f), bias_ref(6, 0.5f);
  std::vector<float> a_prev(5), delta(6);
  for (auto& v : a_prev) v = rng.NextGaussian();
  for (auto& v : delta) v = rng.NextGaussian();
  const std::vector<uint32_t> active{1, 4};
  const float lr = 0.1f;
  SparseOuterUpdate(a_prev, delta, active, lr, &w, bias);
  for (uint32_t j : active) {
    for (size_t i = 0; i < 5; ++i) {
      w_ref(i, j) -= lr * delta[j] * a_prev[i];
    }
    bias_ref[j] -= lr * delta[j];
  }
  EXPECT_TRUE(w.AllClose(w_ref, 1e-5f));
  for (size_t j = 0; j < 6; ++j) EXPECT_NEAR(bias[j], bias_ref[j], 1e-5f);
  // Inactive columns untouched.
  EXPECT_EQ(w(0, 0), w_ref(0, 0));
}

}  // namespace
}  // namespace sampnn
