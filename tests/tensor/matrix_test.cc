#include "src/tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampnn {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructorZeroInitializes) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0f);
  }
}

TEST(MatrixTest, ElementAccessIsRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 1) = 5;
  EXPECT_EQ(m.data()[0], 1.0f);
  EXPECT_EQ(m.data()[2], 3.0f);
  EXPECT_EQ(m.data()[4], 5.0f);
}

TEST(MatrixTest, FromVectorValidatesSize) {
  auto ok = Matrix::FromVector(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)(1, 0), 3.0f);
  auto bad = Matrix::FromVector(2, 2, {1, 2, 3});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(MatrixTest, FilledSetsEveryEntry) {
  Matrix m = Matrix::Filled(2, 2, 7.5f);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 7.5f);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  Matrix id = Matrix::Identity(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, RandomGaussianMatchesMoments) {
  Rng rng(42);
  Matrix m = Matrix::RandomGaussian(100, 100, rng, 2.0f, 0.5f);
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  const double mean = sum / m.size();
  const double var = sq / m.size() - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(MatrixTest, RandomUniformStaysInRange) {
  Rng rng(7);
  Matrix m = Matrix::RandomUniform(50, 50, rng, -1.0f, 2.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -1.0f);
    EXPECT_LT(m.data()[i], 2.0f);
  }
}

TEST(MatrixTest, RowSpanAliasesStorage) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  row[2] = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
  const Matrix& cm = m;
  EXPECT_EQ(cm.Row(1)[2], 9.0f);
}

TEST(MatrixTest, SetZeroAndFill) {
  Matrix m = Matrix::Filled(3, 3, 1.0f);
  m.SetZero();
  EXPECT_EQ(m.FrobeniusNorm(), 0.0f);
  m.Fill(-2.0f);
  EXPECT_EQ(m(2, 2), -2.0f);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  auto m = std::move(Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6})).value();
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(t(j, i), m(i, j));
  }
}

TEST(MatrixTest, DoubleTransposeIsIdentity) {
  Rng rng(3);
  Matrix m = Matrix::RandomGaussian(5, 7, rng);
  EXPECT_TRUE(m.Transposed().Transposed().AllClose(m, 0.0f));
}

TEST(MatrixTest, ColExtractsColumn) {
  auto m = std::move(Matrix::FromVector(2, 3, {1, 2, 3, 4, 5, 6})).value();
  auto col = m.Col(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0], 2.0f);
  EXPECT_EQ(col[1], 5.0f);
}

TEST(MatrixTest, Norms) {
  auto m = std::move(Matrix::FromVector(2, 2, {3, 0, 4, 0})).value();
  EXPECT_FLOAT_EQ(m.ColNorm(0), 5.0f);
  EXPECT_FLOAT_EQ(m.ColNorm(1), 0.0f);
  EXPECT_FLOAT_EQ(m.RowNorm(0), 3.0f);
  EXPECT_FLOAT_EQ(m.FrobeniusNorm(), 5.0f);
  EXPECT_FLOAT_EQ(m.MaxAbs(), 4.0f);
}

TEST(MatrixTest, AllCloseRespectsTolerance) {
  Matrix a = Matrix::Filled(2, 2, 1.0f);
  Matrix b = Matrix::Filled(2, 2, 1.0001f);
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-6f));
  Matrix c(2, 3);
  EXPECT_FALSE(a.AllClose(c));  // shape mismatch
}

TEST(MatrixTest, ToStringTruncatesLargeMatrices) {
  Matrix m(100, 100);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("Matrix 100x100"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace sampnn
